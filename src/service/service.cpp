// neon::service implementation: a single-threaded discrete-event dispatch
// pump over one Backend (docs/service.md).
//
// The pump advances a virtual clock from event to event (job arrivals and
// job completions), retires in-flight jobs whose tail event the clock has
// passed, and dispatches queued jobs into free slots per the configured
// policy. Dispatch = compile (schedule-cache backed), lease a disjoint
// stream block, pad the leased streams to the job's start time with a
// host-recorded event, run the schedule under a RunScope carrying the job
// id, and remember the tail event as the job's completion future.
//
// Determinism: every timestamp is virtual, completions are resolved by
// blocking on tail events (never by polling wall time), so a fixed trace
// and config replays identically on the Sequential and Threaded engines.

#include "service/service.hpp"

#include <algorithm>
#include <cmath>
#include <limits>
#include <mutex>
#include <unordered_map>
#include <utility>

#include "core/error.hpp"
#include "skeleton/schedule_cache.hpp"
#include "sys/event.hpp"

namespace neon::service {

std::string to_string(JobState s)
{
    switch (s) {
        case JobState::Queued: return "queued";
        case JobState::Running: return "running";
        case JobState::Completed: return "completed";
        case JobState::Failed: return "failed";
    }
    return "?";
}

std::string to_string(Policy p)
{
    return p == Policy::Fifo ? "fifo" : "fair-share";
}

namespace {

/// Holds one Backend::leaseStreams reservation; shared by every member of
/// a batch and released when the last member retires.
struct LeaseHold
{
    set::Backend backend;
    int          base = 0;
    int          count = 0;

    LeaseHold(set::Backend b, int bas, int cnt)
        : backend(std::move(b)), base(bas), count(cnt) {}
    LeaseHold(const LeaseHold&) = delete;
    LeaseHold& operator=(const LeaseHold&) = delete;
    ~LeaseHold()
    {
        try {
            backend.releaseStreams(base, count);
        } catch (...) {  // NOLINT(bugprone-empty-catch) — destructor must not throw
        }
    }
};

}  // namespace

struct Job::State
{
    int         id = -1;
    std::string tenant;
    std::string name;
    JobState    state = JobState::Queued;

    double arrival = 0.0;
    double start = -1.0;
    double completion = -1.0;
    int    startSeq = -1;
    bool   isBatched = false;
    int    requeues = 0;  ///< device-loss re-dispatches so far

    int      runs = 1;
    double   weight = 0.0;  ///< fair-share work weight (ops x runs)
    uint64_t hash = 0;      ///< structural schedule digest (batching key)

    std::exception_ptr error;

    // Dispatch plumbing. `ops` is moved into sequence() at dispatch.
    std::vector<set::Container>         ops;
    skeleton::SequenceOptions           options;
    std::shared_ptr<skeleton::Skeleton> skl;
    sys::EventPtr                       tail;
    std::shared_ptr<LeaseHold>          lease;

    set::Backend backend;
};

// --- Job getters ------------------------------------------------------------

namespace {
const Job::State& deref(const std::shared_ptr<Job::State>& s)
{
    NEON_CHECK(s != nullptr, "Job: default-constructed handle");
    return *s;
}
}  // namespace

int                Job::id() const { return deref(mState).id; }
const std::string& Job::tenant() const { return deref(mState).tenant; }
const std::string& Job::name() const { return deref(mState).name; }
JobState           Job::state() const { return deref(mState).state; }
bool               Job::done() const
{
    const JobState s = deref(mState).state;
    return s == JobState::Completed || s == JobState::Failed;
}
double Job::arrival() const { return deref(mState).arrival; }
double Job::start() const
{
    const auto& s = deref(mState);
    NEON_CHECK(s.startSeq >= 0, "Job::start: job not dispatched yet");
    return s.start;
}
double Job::completion() const
{
    const auto& s = deref(mState);
    NEON_CHECK(done(), "Job::completion: job still " + to_string(s.state));
    return s.completion;
}
double Job::latency() const { return completion() - arrival(); }
double Job::queueDelay() const { return start() - arrival(); }
int    Job::startSeq() const
{
    const auto& s = deref(mState);
    NEON_CHECK(s.startSeq >= 0, "Job::startSeq: job not dispatched yet");
    return s.startSeq;
}
bool     Job::batched() const { return deref(mState).isBatched; }
uint64_t Job::structuralHash() const { return deref(mState).hash; }

void Job::rethrowIfFailed() const
{
    const auto& s = deref(mState);
    if (s.state == JobState::Failed && s.error) {
        std::rethrow_exception(s.error);
    }
}

ExecutionReport Job::report() const
{
    const auto& s = deref(mState);
    NEON_CHECK(s.startSeq >= 0, "Job::report: job not dispatched yet");
    set::Backend backend = s.backend;  // profiler() is non-const
    const auto   entries = backend.profiler().trace().entriesForJob(s.id);
    return ExecutionReport::fromEntries(entries, backend.devCount());
}

analysis::AnalysisReport Job::validate() const
{
    const auto& s = deref(mState);
    NEON_CHECK(s.skl != nullptr, "Job::validate: job not dispatched yet");
    return s.skl->validate();
}

// --- Service ----------------------------------------------------------------

struct Service::Impl
{
    set::Backend  backend;
    ServiceConfig config;
    std::mutex    mutex;

    double clock = 0.0;
    int    nextId = 0;
    int    nextStartSeq = 0;
    int    batches = 0;
    int    completed = 0;
    int    failed = 0;

    std::vector<std::shared_ptr<Job::State>> all;       ///< submission order
    std::vector<std::shared_ptr<Job::State>> queue;     ///< submission order
    std::vector<std::shared_ptr<Job::State>> inflight;  ///< dispatch order
    std::unordered_map<std::string, double>  served;    ///< fair-share ledger

    /// Device-loss recovery policy (Service::setRecoveryHandler).
    RecoveryHandler onDeviceLoss;
};

namespace {

constexpr double kInf = std::numeric_limits<double>::infinity();

/// Concurrency is counted in stream leases (dispatch groups): a batch of
/// structurally identical jobs shares one lease and occupies one slot.
int activeLeases(const Service::Impl& s)
{
    std::vector<const LeaseHold*> seen;
    for (const auto& j : s.inflight) {
        const LeaseHold* lease = j->lease.get();
        if (lease != nullptr && std::find(seen.begin(), seen.end(), lease) == seen.end()) {
            seen.push_back(lease);
        }
    }
    return static_cast<int>(seen.size());
}

bool slotsFree(const Service::Impl& s)
{
    return activeLeases(s) < std::max(1, s.config.maxInFlight);
}

void markFailed(Service::Impl& s, Job::State& j, RuntimeError::Info info)
{
    info.jobId = j.id;
    info.tenant = j.tenant;
    if (j.state == JobState::Completed) {
        s.completed--;
    }
    j.error = std::make_exception_ptr(RuntimeError(std::move(info)));
    j.state = JobState::Failed;
    if (j.completion < 0) {
        j.completion = std::max(j.start >= 0 ? j.start : j.arrival, s.clock);
    }
    s.failed++;
}

/// Put a dispatched job back in the queue for a fresh dispatch: release
/// its lease/tail/skeleton and restore the pre-dispatch invariants. Its
/// ops handles were kept at dispatch, so the next dispatchOne recompiles
/// them against whatever backend the service holds by then.
void requeue(Service::Impl& s, const std::shared_ptr<Job::State>& j)
{
    j->requeues++;
    j->state = JobState::Queued;
    j->start = -1.0;
    j->startSeq = -1;
    j->isBatched = false;
    j->tail.reset();
    j->skl.reset();
    j->lease.reset();
    // Keep submission order: the queue is scanned FIFO by submission
    // ordinal, and `all` is already in that order.
    auto pos = std::upper_bound(s.queue.begin(), s.queue.end(), j,
                                [](const auto& a, const auto& b) { return a->id < b->id; });
    s.queue.insert(pos, j);
}

/// A DeviceLost abort with a recovery handler installed: fail only the
/// attributed job, swap to the handler's survivor backend, drop the stale
/// schedule-cache recipes keyed on the old device count, and re-queue the
/// other in-flight jobs. Returns false when recovery is not possible
/// (no handler, no attribution, or the handler threw) — the caller falls
/// back to the fail-stop blast radius.
bool recoverDeviceLoss(Service::Impl& s, const RuntimeError::Info& info)
{
    if (!s.onDeviceLoss || info.kind != RuntimeError::Kind::DeviceLost) {
        return false;
    }
    const int    oldDevCount = s.backend.devCount();
    set::Backend survivor;
    try {
        survivor = s.onDeviceLoss(s.backend, info);
    } catch (...) {
        return false;  // handler declined; blast radius applies
    }
    skeleton::ScheduleCache::instance().invalidateDevCount(oldDevCount);
    s.backend = std::move(survivor);

    const auto running = s.inflight;
    s.inflight.clear();
    for (const auto& j : running) {
        if (j->state != JobState::Running) {
            continue;
        }
        // A job can ride at most 3 recoveries; after that it inherits the
        // failure (guards against a handler that never actually heals).
        if (j->id == info.jobId || info.jobId < 0 || j->requeues >= 3) {
            markFailed(s, *j, info);
            continue;
        }
        requeue(s, j);
    }
    return true;
}

/// Pull a latched engine abort (threaded engine: a worker faulted after
/// dispatch returned), attribute it, and restore the engine. Default
/// fail-stop blast radius: the abort suppressed every op queued behind
/// it, so every currently in-flight job's remaining work was dropped —
/// all of them are failed, each with its own attribution (the triggering
/// job keeps the original fault kind). With a recovery handler installed,
/// a DeviceLost abort instead fails only the attributed job and re-queues
/// the rest onto the recovered backend.
void absorbAbort(Service::Impl& s)
{
    auto& eng = s.backend.engine();
    if (!eng.aborted()) {
        return;
    }
    RuntimeError::Info info;
    try {
        eng.rethrowAbort();
    } catch (const RuntimeError& e) {
        info = e.info;
    } catch (...) {
        info.kind = RuntimeError::Kind::DeviceLost;
    }
    eng.quiesce();
    eng.clearAbort();
    if (recoverDeviceLoss(s, info)) {
        return;
    }
    bool attributed = false;
    for (auto& j : s.inflight) {
        if (j->state != JobState::Running) {
            continue;
        }
        markFailed(s, *j, info);
        attributed = attributed || j->id == info.jobId;
    }
    if (!attributed && info.jobId >= 0) {
        for (auto& j : s.all) {
            if (j->id == info.jobId && j->state != JobState::Failed) {
                markFailed(s, *j, info);
                break;
            }
        }
    }
}

/// Blocking tail-event resolution: the job's virtual completion time. On
/// the sequential engine the tail is recorded eagerly at dispatch; on the
/// threaded engine this waits (bounded by hostSyncTimeout) for the worker
/// threads to reach it.
double resolveCompletion(Service::Impl& s, Job::State& j)
{
    if (j.completion >= 0) {
        return j.completion;
    }
    NEON_CHECK(j.tail != nullptr, "service: in-flight job without a tail event");
    const double limit = s.backend.config().hostSyncTimeout;
    double       v = 0.0;
    double       waited = 0.0;
    for (;;) {
        const auto status = j.tail->waitRecorded(0.25, nullptr, &v);
        if (status == sys::EventWaitStatus::Recorded) {
            break;
        }
        waited += 0.25;
        NEON_CHECK(limit <= 0.0 || waited < limit,
                   "service: timed out waiting for job " + std::to_string(j.id) + " tail");
    }
    j.completion = std::max(v, j.start);
    return j.completion;
}

/// Retire every in-flight job whose completion the clock has passed,
/// releasing its share of the stream lease.
void retire(Service::Impl& s)
{
    for (size_t i = s.inflight.size(); i-- > 0;) {
        auto& j = s.inflight[i];
        if (j->state != JobState::Running && j->state != JobState::Failed) {
            continue;
        }
        if (resolveCompletion(s, *j) > s.clock) {
            continue;
        }
        if (j->state == JobState::Running) {
            j->state = JobState::Completed;
            s.completed++;
        }
        j->lease.reset();
        s.inflight.erase(s.inflight.begin() + static_cast<std::ptrdiff_t>(i));
    }
}

/// Index into the queue of the next job to dispatch at the current clock,
/// or -1 when nothing has arrived yet. FIFO: lowest submission ordinal.
/// Fair share: job of the least-served tenant (dispatch-weight ledger),
/// submission order breaking ties.
int pickArrived(Service::Impl& s)
{
    int best = -1;
    for (int i = 0; i < static_cast<int>(s.queue.size()); ++i) {
        const auto& j = s.queue[i];
        if (j->arrival > s.clock) {
            continue;
        }
        if (best < 0) {
            best = i;
            if (s.config.policy == Policy::Fifo) {
                break;
            }
            continue;
        }
        if (s.served[j->tenant] < s.served[s.queue[best]->tenant]) {
            best = i;
        }
    }
    return best;
}

/// Compile + lease + pad + run one job. `lease` is null for a batch head
/// (a fresh block is leased and returned through it) and non-null for
/// batch members, which enqueue onto the head's streams behind it.
void dispatchOne(Service::Impl& s, const std::shared_ptr<Job::State>& job,
                 std::shared_ptr<LeaseHold>& lease)
{
    job->start = std::max(s.clock, job->arrival);
    job->startSeq = s.nextStartSeq++;
    s.served[job->tenant] += job->weight;
    job->backend = s.backend;  // recovery may have swapped it since submit
    auto skl = std::make_shared<skeleton::Skeleton>(s.backend);
    try {
        // `ops` is passed by copy (cheap shared handles), not moved: a
        // device-loss recovery may re-queue this job for a fresh dispatch.
        auto      compiled = skl->sequence(job->ops, job->options);
        const int nStreams = compiled.streamCount();
        if (lease == nullptr) {
            const int base = s.backend.leaseStreams(nStreams);
            lease = std::make_shared<LeaseHold>(s.backend, base, nStreams);
        } else {
            NEON_CHECK(nStreams <= lease->count,
                       "service: batch member needs more streams than its head");
        }
        // Arrival padding: a host-recorded event at the start timestamp,
        // waited by every leased stream, pushes their virtual clocks to at
        // least the job's start without ever reading a vtime on the host.
        auto pad = std::make_shared<sys::Event>();
        pad->record(job->start);
        for (int d = 0; d < s.backend.devCount(); ++d) {
            for (int si = 0; si < nStreams; ++si) {
                s.backend.stream(d, lease->base + si).wait(pad);
            }
        }
        const skeleton::RunScope scope{lease->base, job->id, s.config.chainData};
        for (int r = 0; r < job->runs; ++r) {
            skl->run(scope);
        }
        job->tail = skl->lastRunTail();
        job->skl = std::move(skl);
        job->lease = lease;
        job->state = JobState::Running;
        s.inflight.push_back(job);
    } catch (const RuntimeError& e) {
        // Dispatch-time fault (sequential engine executes eagerly, so this
        // is where its faults surface). Skeleton::run already quiesced;
        // clear the latch so subsequent jobs dispatch.
        s.backend.engine().quiesce();
        s.backend.engine().clearAbort();
        if (recoverDeviceLoss(s, e.info) && job->requeues < 3 &&
            !(job->id == e.info.jobId || e.info.jobId < 0)) {
            // Someone else's device loss interrupted this dispatch: this
            // job rides the recovery too.
            requeue(s, job);
            return;
        }
        job->skl = std::move(skl);
        markFailed(s, *job, e.info);
    }
}

/// Dispatch the job at queue index `idx` plus, when batching is on, any
/// directly following policy-order jobs with the identical structural
/// hash (prefix rule — never skips over a non-matching job, so per-tenant
/// dispatch order is preserved) onto the same stream lease.
void dispatchBatch(Service::Impl& s, int idx)
{
    auto head = s.queue[static_cast<size_t>(idx)];
    s.queue.erase(s.queue.begin() + idx);
    std::shared_ptr<LeaseHold> lease;
    dispatchOne(s, head, lease);
    if (head->state != JobState::Running || !s.config.batching) {
        return;
    }
    int members = 1;
    while (members < std::max(1, s.config.maxBatch)) {
        const int next = pickArrived(s);
        if (next < 0 || s.queue[static_cast<size_t>(next)]->hash != head->hash) {
            break;
        }
        auto member = s.queue[static_cast<size_t>(next)];
        s.queue.erase(s.queue.begin() + next);
        dispatchOne(s, member, lease);
        if (member->state != JobState::Running) {
            break;
        }
        member->isBatched = true;
        ++members;
    }
    if (members > 1) {
        head->isBatched = true;
        s.batches++;
    }
}

void dispatchWhilePossible(Service::Impl& s)
{
    while (slotsFree(s)) {
        const int idx = pickArrived(s);
        if (idx < 0) {
            break;
        }
        dispatchBatch(s, idx);
    }
}

/// One discrete-event step: absorb aborts, retire, dispatch, and — if work
/// remains but nothing is dispatchable — advance the clock to the next
/// event (earliest queued arrival or earliest in-flight completion).
void step(Service::Impl& s)
{
    absorbAbort(s);
    retire(s);
    dispatchWhilePossible(s);
    if (s.queue.empty() && s.inflight.empty()) {
        return;
    }
    double next = kInf;
    if (!s.queue.empty() && slotsFree(s)) {
        for (const auto& j : s.queue) {
            next = std::min(next, j->arrival);
        }
    }
    for (auto& j : s.inflight) {
        next = std::min(next, resolveCompletion(s, *j));
    }
    NEON_CHECK(next < kInf, "service: scheduler stuck (no next event)");
    s.clock = std::max(s.clock, next);
}

/// Final backend sync: surfaces late engine aborts (threaded workers may
/// fault after their job was virtually retired) as job failures rather
/// than exceptions out of drain().
void syncAbsorbing(Service::Impl& s)
{
    const int guard = static_cast<int>(s.all.size()) + 2;
    for (int i = 0; i < guard; ++i) {
        try {
            s.backend.sync();
            return;
        } catch (const RuntimeError& e) {
            auto& eng = s.backend.engine();
            eng.quiesce();
            eng.clearAbort();
            RuntimeError::Info info = e.info;
            bool               found = false;
            for (auto& j : s.all) {
                if (j->id == info.jobId && j->state != JobState::Failed) {
                    markFailed(s, *j, info);
                    found = true;
                    break;
                }
            }
            if (!found && info.jobId < 0) {
                return;  // unattributable; engine restored, stop retrying
            }
        }
    }
}

}  // namespace

Service::Service(set::Backend backend, ServiceConfig config)
    : mImpl(std::make_shared<Impl>())
{
    NEON_CHECK(config.maxInFlight >= 1, "ServiceConfig: maxInFlight must be >= 1");
    NEON_CHECK(config.maxBatch >= 1, "ServiceConfig: maxBatch must be >= 1");
    mImpl->backend = std::move(backend);
    mImpl->config = config;
}

void Service::setRecoveryHandler(RecoveryHandler handler)
{
    auto&                       s = *mImpl;
    std::lock_guard<std::mutex> lock(s.mutex);
    s.onDeviceLoss = std::move(handler);
}

Job Service::submit(JobRequest request)
{
    auto&                       s = *mImpl;
    std::lock_guard<std::mutex> lock(s.mutex);
    NEON_CHECK(!request.ops.empty(), "Service::submit: empty container sequence");

    absorbAbort(s);
    const double arrival = request.arrival < 0.0 ? s.clock : request.arrival;
    s.clock = std::max(s.clock, arrival);
    retire(s);

    const int id = s.nextId++;
    if (s.config.tenantQuota > 0) {
        int held = 0;
        for (const auto& j : s.queue) {
            held += j->tenant == request.tenant ? 1 : 0;
        }
        for (const auto& j : s.inflight) {
            held += j->tenant == request.tenant ? 1 : 0;
        }
        if (held >= s.config.tenantQuota) {
            RuntimeError::Info info;
            info.kind = RuntimeError::Kind::AdmissionRejected;
            info.opKind = "submit";
            info.opName = request.name;
            info.jobId = id;
            info.tenant = request.tenant;
            throw RuntimeError(std::move(info));
        }
    }

    auto st = std::make_shared<Job::State>();
    st->id = id;
    st->tenant = std::move(request.tenant);
    st->name = request.name;
    st->arrival = arrival;
    st->runs = std::max(1, request.runs);
    st->weight = static_cast<double>(request.ops.size()) * st->runs;
    st->hash = skeleton::makeScheduleKey(request.ops, s.backend.devCount(),
                                         request.options.occ, request.options.maxStreams)
                   .hash;
    st->options = std::move(request.options);
    st->options.name = std::move(request.name);
    st->ops = std::move(request.ops);
    st->backend = s.backend;

    s.all.push_back(st);
    s.queue.push_back(st);
    dispatchWhilePossible(s);
    return Job(st);
}

void Service::drain()
{
    auto&                       s = *mImpl;
    std::lock_guard<std::mutex> lock(s.mutex);
    while (!s.queue.empty() || !s.inflight.empty()) {
        step(s);
    }
    syncAbsorbing(s);
}

void Service::wait(const Job& job)
{
    NEON_CHECK(job.valid(), "Service::wait: invalid job handle");
    auto&                       s = *mImpl;
    std::lock_guard<std::mutex> lock(s.mutex);
    while (!job.done() && (!s.queue.empty() || !s.inflight.empty())) {
        step(s);
    }
}

double Service::now() const
{
    return mImpl->clock;
}

const ServiceConfig& Service::config() const
{
    return mImpl->config;
}

set::Backend& Service::backend()
{
    return mImpl->backend;
}

std::vector<Job> Service::jobs() const
{
    auto&                       s = *mImpl;
    std::lock_guard<std::mutex> lock(s.mutex);
    std::vector<Job>            out;
    out.reserve(s.all.size());
    for (const auto& st : s.all) {
        out.push_back(Job(st));
    }
    return out;
}

int Service::queuedCount() const
{
    return static_cast<int>(mImpl->queue.size());
}

int Service::inFlightCount() const
{
    return static_cast<int>(mImpl->inflight.size());
}

int Service::completedCount() const
{
    return mImpl->completed;
}

int Service::failedCount() const
{
    return mImpl->failed;
}

int Service::batchCount() const
{
    return mImpl->batches;
}

}  // namespace neon::service
