#pragma once
// Synthetic multi-tenant traffic for the neon::service layer
// (docs/service.md).
//
// A TrafficSpec seeds a deterministic trace of JobDescs — Poisson
// arrivals, tenant assignment, workload kind (LBM-like stencil ping-pong,
// Poisson-like Jacobi + residual reduction, FEM-like assembly mix), grid
// shape and run count. buildJob() materializes one JobDesc on any Backend,
// returning both the JobRequest (for Service::submit) and handles onto the
// job's fields/scalars so tests can snapshot results bitwise: the same
// JobDesc built on a fresh solo backend is the isolation oracle.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"
#include "dgrid/dfield.hpp"
#include "service/job.hpp"
#include "set/backend.hpp"

namespace neon::service {

enum class WorkloadKind : uint8_t
{
    Lbm,      ///< stencil ping-pong between two fields (PR-2 LBM shape)
    Poisson,  ///< Jacobi sweeps + a dot-product residual
    Fem,      ///< map + stencil + dot + host scalar op
};

std::string to_string(WorkloadKind k);

/// Everything one replayed job is, derived deterministically from the
/// trace seed: build the same desc on any backend and the containers are
/// structurally identical (same schedule-cache key for equal dim/devCount).
struct JobDesc
{
    int          index = 0;  ///< ordinal in the trace (submission order)
    WorkloadKind kind = WorkloadKind::Lbm;
    std::string  tenant = "t0";
    double       arrival = 0.0;  ///< virtual seconds
    index_3d     dim{4, 4, 8};
    int          runs = 1;
    unsigned     seed = 0;  ///< per-job field-init seed

    [[nodiscard]] std::string toString() const;
};

struct TrafficSpec
{
    unsigned seed = 1;
    int      jobs = 100;
    int      tenants = 4;
    /// Mean of the exponential inter-arrival gap (Poisson process),
    /// virtual seconds.
    double meanGap = 2.0e-4;
    int    maxRuns = 2;

    TrafficSpec& withSeed(unsigned s)
    {
        seed = s;
        return *this;
    }
    TrafficSpec& withJobs(int n)
    {
        jobs = n;
        return *this;
    }
    TrafficSpec& withTenants(int n)
    {
        tenants = n;
        return *this;
    }
    TrafficSpec& withMeanGap(double g)
    {
        meanGap = g;
        return *this;
    }
    TrafficSpec& withMaxRuns(int n)
    {
        maxRuns = n;
        return *this;
    }
};

/// Deterministic trace: `spec.jobs` descs with non-decreasing arrivals.
std::vector<JobDesc> makeTrace(const TrafficSpec& spec);

/// One materialized job: the submit-ready request plus live handles onto
/// the data it computes on, for bitwise result snapshots.
struct BuiltJob
{
    JobDesc                                desc;
    JobRequest                             request;
    std::vector<dgrid::DField<double>>     fields;
    std::vector<set::GlobalScalar<double>> scalars;
    /// Keeps the job's grid alive for the lifetime of the handles above.
    std::shared_ptr<void> grid;
};

/// Materialize `desc` on `backend`: fresh fields (seeded init), fresh
/// scalars, and the workload's container sequence.
BuiltJob buildJob(const set::Backend& backend, const JobDesc& desc);

/// updateHost() every field and flatten fields + scalars into one vector
/// for bitwise comparison against a solo-run oracle.
std::vector<double> snapshot(BuiltJob& job);

}  // namespace neon::service
