#pragma once
// neon::service — a multi-tenant front door for one Backend
// (docs/service.md).
//
// Many independent jobs (each a container sequence, i.e. exactly what
// Skeleton::sequence takes) are submitted concurrently onto a single
// device pool. The service provides what a bare Skeleton does not:
//
//   * admission control — a cap on in-flight jobs plus optional per-tenant
//     quotas; over-quota submissions are refused with an attributed
//     RuntimeError (Kind::AdmissionRejected, jobId + tenant filled in),
//   * scheduling policy — FIFO (global submission order) or fair-share
//     (least-served tenant first, weighted by dispatched work),
//   * stream arbitration — every dispatched job leases a disjoint block of
//     backend streams (Backend::leaseStreams), so jobs with disjoint field
//     sets overlap on the device pool while the per-uid data chains
//     (Backend::dataBarriers) still serialize jobs that share fields,
//   * batching — consecutive policy-order jobs with identical structural
//     schedule hashes (schedule-cache keys, computed at submit without
//     compiling) share one stream lease, amortizing stream pressure.
//
// Time is the backend's virtual clock. The service clock advances on
// submit (to the job's arrival stamp) and inside drain()/wait() (to the
// next arrival or completion event), discrete-event style, so a whole
// traffic replay is deterministic for a fixed seed on both engines.
//
// Threading contract: the engines accept host enqueues from one thread at
// a time, so Service is itself single-threaded — one thread calls
// submit()/drain()/wait(). A mutex serializes the public methods to make
// accidental cross-thread use fail safe rather than corrupt state.

#include <cstdint>
#include <functional>
#include <memory>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "service/job.hpp"
#include "set/backend.hpp"

namespace neon::service {

enum class Policy : uint8_t
{
    Fifo,       ///< dispatch in global submission order
    FairShare,  ///< least-served tenant first (by dispatched work weight)
};

std::string to_string(Policy p);

struct ServiceConfig
{
    Policy policy = Policy::Fifo;
    /// Dispatch-slot cap, counted in stream leases: at most this many
    /// dispatch groups (a batch shares one lease and counts once) are in
    /// flight at a time. 1 with batching off reproduces the serialized
    /// FIFO-of-one baseline.
    int maxInFlight = 4;
    /// Per-tenant admission quota over queued + in-flight jobs; 0 = no
    /// quota. Submissions beyond it throw Kind::AdmissionRejected.
    int tenantQuota = 0;
    /// Batch structurally-identical consecutive jobs onto one lease.
    bool batching = true;
    int  maxBatch = 4;
    /// Debug: drop the per-uid data chains between jobs (RunScope
    /// chainData=false). Only for race-detector tests that want the
    /// unordered behavior on purpose.
    bool chainData = true;

    ServiceConfig& withPolicy(Policy p)
    {
        policy = p;
        return *this;
    }
    ServiceConfig& withMaxInFlight(int n)
    {
        maxInFlight = n;
        return *this;
    }
    ServiceConfig& withTenantQuota(int n)
    {
        tenantQuota = n;
        return *this;
    }
    ServiceConfig& withBatching(bool on, int cap = 4)
    {
        batching = on;
        maxBatch = cap;
        return *this;
    }
    ServiceConfig& withChainData(bool on)
    {
        chainData = on;
        return *this;
    }
};

/// Policy hook for surviving a permanent device loss mid-trace
/// (docs/robustness.md, "Self-healing recovery"). Called from the absorb
/// path with the dying backend and the fault attribution; returns the
/// recovered backend the service should dispatch onto from now on. The
/// handler owns the domain-side recovery: build a survivor backend (e.g.
/// repartition::survivorSpec), rebind its grids and rebuild the submitted
/// containers — the service's stored handles share the rebuilt state.
using RecoveryHandler =
    std::function<set::Backend(set::Backend dying, const RuntimeError::Info& info)>;

class Service
{
   public:
    /// Opaque service state (defined in service.cpp).
    struct Impl;

    explicit Service(set::Backend backend, ServiceConfig config = {});

    /// Install a device-loss recovery handler. Without one, an engine
    /// abort keeps its fail-stop blast radius: every in-flight job fails.
    /// With one, a DeviceLost abort fails only the attributed job; the
    /// service swaps to the handler's recovered backend, drops the stale
    /// schedule-cache recipes keyed on the old device count, and re-queues
    /// the other in-flight jobs for re-dispatch (recompiled against the
    /// survivor geometry).
    void setRecoveryHandler(RecoveryHandler handler);

    /// Admit a job. Advances the service clock to the job's arrival,
    /// retires any in-flight jobs that completed by then, and dispatches
    /// while slots are free. Throws RuntimeError(Kind::AdmissionRejected)
    /// with jobId/tenant attribution when the tenant's quota is exhausted;
    /// the request is not enqueued in that case.
    Job submit(JobRequest request);

    /// Run the discrete-event loop until every admitted job completed or
    /// failed, then sync the backend (surfacing any late engine abort as
    /// the owning job's failure, not an exception here).
    void drain();

    /// drain() until this one job is done (other jobs make progress too,
    /// as required to free slots).
    void wait(const Job& job);

    // --- introspection ------------------------------------------------------
    [[nodiscard]] double now() const;  ///< service virtual clock
    [[nodiscard]] const ServiceConfig& config() const;
    [[nodiscard]] set::Backend&        backend();
    /// Every job ever admitted, in submission order.
    [[nodiscard]] std::vector<Job> jobs() const;
    [[nodiscard]] int queuedCount() const;
    [[nodiscard]] int inFlightCount() const;
    [[nodiscard]] int completedCount() const;
    [[nodiscard]] int failedCount() const;
    /// Multi-member batches formed so far.
    [[nodiscard]] int batchCount() const;

   private:
    std::shared_ptr<Impl> mImpl;
};

}  // namespace neon::service
