// Synthetic traffic generation for neon::service (docs/service.md).

#include "service/traffic.hpp"

#include <cmath>
#include <random>
#include <utility>

#include "patterns/blas.hpp"
#include "set/container.hpp"

namespace neon::service {

using set::Container;
using set::GlobalScalar;

std::string to_string(WorkloadKind k)
{
    switch (k) {
        case WorkloadKind::Lbm: return "lbm";
        case WorkloadKind::Poisson: return "poisson";
        case WorkloadKind::Fem: return "fem";
    }
    return "?";
}

std::string JobDesc::toString() const
{
    return to_string(kind) + "#" + std::to_string(index) + " tenant=" + tenant +
           " arrival=" + std::to_string(arrival) + " dim=" + std::to_string(dim.x) + "x" +
           std::to_string(dim.y) + "x" + std::to_string(dim.z) +
           " runs=" + std::to_string(runs) + " seed=" + std::to_string(seed);
}

std::vector<JobDesc> makeTrace(const TrafficSpec& spec)
{
    NEON_CHECK(spec.jobs >= 1, "TrafficSpec: jobs must be >= 1");
    NEON_CHECK(spec.tenants >= 1, "TrafficSpec: tenants must be >= 1");
    NEON_CHECK(spec.meanGap > 0.0, "TrafficSpec: meanGap must be > 0");
    std::mt19937 rng(spec.seed * 2654435761u + 97u);
    auto         pick = [&rng](int lo, int hi) {
        return lo + static_cast<int>(rng() % static_cast<unsigned>(hi - lo + 1));
    };
    // Small per-kind dim menus: few distinct shapes => many structural
    // schedule-key collisions => the batching path actually exercises.
    static const index_3d kLbmDims[] = {{4, 4, 8}, {5, 4, 8}, {6, 4, 10}};
    static const index_3d kPoissonDims[] = {{4, 5, 8}, {5, 5, 10}};
    static const index_3d kFemDims[] = {{4, 4, 6}, {6, 5, 8}};

    std::vector<JobDesc> trace;
    trace.reserve(static_cast<size_t>(spec.jobs));
    double now = 0.0;
    for (int i = 0; i < spec.jobs; ++i) {
        // Poisson arrivals: exponential gaps, inverse-CDF on a uniform
        // drawn from the open interval (std::exponential_distribution is
        // implementation-defined; this is reproducible everywhere).
        const double u = (static_cast<double>(rng()) + 0.5) / 4294967296.0;
        now += -spec.meanGap * std::log(1.0 - u);

        JobDesc d;
        d.index = i;
        d.arrival = now;
        d.tenant = "t" + std::to_string(pick(0, spec.tenants - 1));
        d.runs = pick(1, std::max(1, spec.maxRuns));
        d.seed = rng();
        switch (pick(0, 2)) {
            case 0:
                d.kind = WorkloadKind::Lbm;
                d.dim = kLbmDims[pick(0, 2)];
                break;
            case 1:
                d.kind = WorkloadKind::Poisson;
                d.dim = kPoissonDims[pick(0, 1)];
                break;
            default:
                d.kind = WorkloadKind::Fem;
                d.dim = kFemDims[pick(0, 1)];
                break;
        }
        trace.push_back(std::move(d));
    }
    return trace;
}

namespace {

Container makeStencil(dgrid::DGrid& grid, const std::string& name,
                      dgrid::DField<double> src, dgrid::DField<double> dst)
{
    return grid.newContainer(name, [src, dst](auto& l) mutable {
        auto sp = l.load(src, Access::READ, Compute::STENCIL);
        auto dp = l.load(dst, Access::WRITE);
        return [=](const dgrid::DCell& c) mutable {
            double acc = -6.0 * sp(c);
            for (const auto& off : Stencil::laplace7().points()) {
                acc += sp.nghVal(c, off);
            }
            dp(c) = sp(c) + 0.05 * acc;
        };
    });
}

Container makeMap(dgrid::DGrid& grid, const std::string& name, dgrid::DField<double> src,
                  dgrid::DField<double> dst, GlobalScalar<double> s)
{
    return grid.newContainer(name, [src, dst, s](auto& l) mutable {
        auto sp = l.load(src, Access::READ);
        auto dp = l.load(dst, Access::WRITE);
        auto sv = l.load(s, Access::READ);
        return [=](const dgrid::DCell& c) mutable {
            dp(c) = 0.9 * dp(c) + sv() * sp(c) + 0.01;
        };
    });
}

}  // namespace

BuiltJob buildJob(const set::Backend& backend, const JobDesc& desc)
{
    BuiltJob     out;
    out.desc = desc;
    set::Backend bk = backend;
    auto         grid = std::make_shared<dgrid::DGrid>(bk, desc.dim, Stencil::laplace7());
    out.grid = grid;

    const int nFields = desc.kind == WorkloadKind::Fem ? 3 : 2;
    const double jitter = 0.001 * static_cast<double>(desc.seed % 997u);
    for (int i = 0; i < nFields; ++i) {
        auto f = grid->newField<double>("f" + std::to_string(i), 1, 0.0);
        if (!bk.isDryRun()) {
            // Dry-run backends carry no host mirrors (kernels never touch
            // cells there), so the value init only applies to real runs.
            f.forEachHost([i, jitter](const index_3d& g, int, double& v) {
                v = 0.01 * (g.x + 2 * g.y + 3 * g.z) + 0.1 * i + jitter;
            });
            f.updateDev();
        }
        out.fields.push_back(std::move(f));
    }
    out.scalars.emplace_back(bk, "s0", 0.3 + jitter);
    out.scalars.emplace_back(bk, "s1", 0.7);

    auto& f = out.fields;
    auto& s = out.scalars;
    auto& ops = out.request.ops;
    skeleton::SequenceOptions options;
    switch (desc.kind) {
        case WorkloadKind::Lbm:
            // Stencil ping-pong: the PR-2 LBM shape. Each run chains on the
            // previous through the per-uid data barriers.
            ops.push_back(makeStencil(*grid, "lbm-even", f[0], f[1]));
            ops.push_back(makeStencil(*grid, "lbm-odd", f[1], f[0]));
            options.withOcc(Occ::NONE).withMaxStreams(2);
            break;
        case WorkloadKind::Poisson:
            // Jacobi sweeps plus a residual-style reduction.
            ops.push_back(makeStencil(*grid, "jacobi-even", f[0], f[1]));
            ops.push_back(makeStencil(*grid, "jacobi-odd", f[1], f[0]));
            ops.push_back(patterns::dot(*grid, f[0], f[1], s[1], "residual"));
            options.withOcc(Occ::STANDARD).withMaxStreams(2);
            break;
        case WorkloadKind::Fem:
            // Assembly-flavored mix: map, stencil, reduce, host scalar op.
            ops.push_back(makeMap(*grid, "assemble", f[0], f[1], s[0]));
            ops.push_back(makeStencil(*grid, "apply", f[1], f[2]));
            ops.push_back(patterns::dot(*grid, f[2], f[0], s[1], "energy"));
            {
                auto x = s[0];
                auto y = s[1];
                ops.push_back(Container::scalarOp<double>(
                    "relax", bk, {x, y}, {x}, [x, y]() mutable {
                        x.set(0.5 * x.hostValue() +
                              y.hostValue() / (1.0 + std::abs(y.hostValue())));
                    }));
            }
            options.withOcc(Occ::EXTENDED).withMaxStreams(4);
            break;
    }

    out.request.tenant = desc.tenant;
    out.request.name = to_string(desc.kind) + "#" + std::to_string(desc.index);
    out.request.options = options;
    out.request.runs = desc.runs;
    out.request.arrival = desc.arrival;
    return out;
}

std::vector<double> snapshot(BuiltJob& job)
{
    std::vector<double> out;
    for (auto& f : job.fields) {
        f.updateHost();
        job.desc.dim.forEach([&](const index_3d& g) { out.push_back(f.hVal(g)); });
    }
    for (auto& s : job.scalars) {
        out.push_back(s.hostValue());
    }
    return out;
}

}  // namespace neon::service
