#pragma once
// neon::service job handles (docs/service.md).
//
// A JobRequest describes one unit of multi-tenant work: a container
// sequence plus scheduling metadata (tenant, virtual arrival time, run
// count). Service::submit() turns it into a Job — a cheap shared handle
// the caller keeps while the service compiles, dispatches and retires the
// work. All timestamps are virtual seconds on the backend's discrete-event
// clock; latency() and queueDelay() are therefore deterministic for a
// fixed trace and config.

#include <cstdint>
#include <exception>
#include <memory>
#include <string>
#include <utility>
#include <vector>

#include "analysis/report.hpp"
#include "set/backend.hpp"
#include "set/container.hpp"
#include "skeleton/skeleton.hpp"
#include "sys/execution_report.hpp"

namespace neon::service {

/// One unit of tenant work submitted to a Service.
struct JobRequest
{
    std::string tenant = "default";
    /// Human-readable label; becomes the schedule name and shows up in
    /// error messages and trace exports.
    std::string name = "job";
    /// The container sequence, exactly as Skeleton::sequence takes it.
    std::vector<set::Container> ops;
    skeleton::SequenceOptions   options;
    /// How many times the compiled schedule runs back-to-back.
    int runs = 1;
    /// Virtual arrival timestamp. Negative = "now" (the service clock at
    /// submit time). The service never starts a job before its arrival.
    double arrival = -1.0;

    JobRequest& withTenant(std::string t)
    {
        tenant = std::move(t);
        return *this;
    }
    JobRequest& withName(std::string n)
    {
        name = std::move(n);
        return *this;
    }
    JobRequest& withRuns(int n)
    {
        runs = n;
        return *this;
    }
    JobRequest& withArrival(double t)
    {
        arrival = t;
        return *this;
    }
};

enum class JobState : uint8_t
{
    Queued,     ///< admitted, waiting for a dispatch slot
    Running,    ///< dispatched onto leased streams, tail not yet retired
    Completed,  ///< tail event retired; latency()/completion() valid
    Failed,     ///< a RuntimeError aborted it; rethrowIfFailed() throws
};

std::string to_string(JobState s);

class Service;

/// Shared handle onto one submitted job. Valid for the lifetime of the
/// Service that issued it; all getters are cheap field reads. Timing
/// getters require the job to have reached the corresponding state
/// (they throw NeonException otherwise).
class Job
{
   public:
    /// Opaque shared job record (defined in service.cpp).
    struct State;

    Job() = default;

    [[nodiscard]] bool valid() const { return mState != nullptr; }
    [[nodiscard]] int  id() const;
    [[nodiscard]] const std::string& tenant() const;
    [[nodiscard]] const std::string& name() const;
    [[nodiscard]] JobState state() const;
    [[nodiscard]] bool     done() const;  ///< Completed or Failed

    // --- virtual-time accounting -------------------------------------------
    [[nodiscard]] double arrival() const;
    /// Dispatch timestamp (throws before Running).
    [[nodiscard]] double start() const;
    /// Tail-event timestamp (throws before Completed/Failed).
    [[nodiscard]] double completion() const;
    [[nodiscard]] double latency() const;     ///< completion - arrival
    [[nodiscard]] double queueDelay() const;  ///< start - arrival

    /// Global dispatch ordinal (0 = first job the service started). The
    /// FIFO-order tests key on this.
    [[nodiscard]] int startSeq() const;
    /// True when the job ran as a member of a structural batch sharing a
    /// stream lease with its siblings.
    [[nodiscard]] bool batched() const;
    /// Structural schedule-cache digest, computed at submit time without
    /// compiling; equal hashes => batchable.
    [[nodiscard]] uint64_t structuralHash() const;

    /// Rethrow the stored RuntimeError (no-op unless state()==Failed).
    void rethrowIfFailed() const;

    /// Per-job ExecutionReport built from the trace entries stamped with
    /// this job's id. Requires profiler trace recording around the run.
    [[nodiscard]] ExecutionReport report() const;

    /// Lint the job's compiled schedule (valid once dispatched).
    [[nodiscard]] analysis::AnalysisReport validate() const;

   private:
    friend class Service;
    explicit Job(std::shared_ptr<State> s) : mState(std::move(s)) {}
    std::shared_ptr<State> mState;
};

}  // namespace neon::service
