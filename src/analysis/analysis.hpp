#pragma once
// Umbrella header for neon::analysis (docs/analysis.md): the dependency-
// graph lint and the happens-before schedule race detector.
//
//   // Lint a skeleton's graph + schedule against its access records:
//   analysis::AnalysisReport rep = app.validate();
//
//   // Race-check an execution (any engine):
//   auto an = backend.analysis();
//   an.enable();
//   app.run(); app.sync();
//   auto races = an.raceReport();
//
//   // Diff observed kernel accesses against Loader declarations
//   // (runs the pipeline once with instrumented views):
//   auto deep = app.validate(neon::ValidateMode::Deep);
//
//   // Or run any example/bench under NEON_ANALYSIS=1 (tools/neon-lint)
//   // and NEON_SANITIZE=1 (tools/neon-lint --sanitize).

#include "analysis/access_model.hpp"   // NOLINT(misc-include-cleaner)
#include "analysis/env.hpp"            // NOLINT(misc-include-cleaner)
#include "analysis/graph_lint.hpp"     // NOLINT(misc-include-cleaner)
#include "analysis/race_detector.hpp"  // NOLINT(misc-include-cleaner)
#include "analysis/report.hpp"         // NOLINT(misc-include-cleaner)
#include "analysis/sanitizer.hpp"      // NOLINT(misc-include-cleaner)
