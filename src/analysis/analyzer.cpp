#include "set/analyzer.hpp"

#include "analysis/race_detector.hpp"

namespace neon::set {

analysis::AnalysisReport Analyzer::raceReport() const
{
    return analysis::raceReport(log(), mBackend.devCount());
}

analysis::AnalysisReport Analyzer::drainRaces() const
{
    return analysis::drainRaces(log(), mBackend.devCount());
}

}  // namespace neon::set
