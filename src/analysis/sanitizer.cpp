#include "analysis/sanitizer.hpp"

#include <algorithm>
#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <map>
#include <mutex>
#include <sstream>
#include <string>
#include <unordered_set>
#include <utility>

#include "set/sanitize.hpp"

namespace neon::analysis {

namespace {

using set::sanitize::AccessObs;
using set::sanitize::Entry;

/// What the container declared about one uid.
struct DeclFacts
{
    bool declared = false;
    bool write = false;
    bool stencil = false;
    bool scalar = false;
};

DeclFacts factsFor(const Entry& e, uint64_t uid)
{
    DeclFacts f;
    for (const auto& a : e.declared) {
        if (a.uid != uid) {
            continue;
        }
        f.declared = true;
        f.write = f.write || a.access == Access::WRITE;
        f.stencil = f.stencil || a.compute == Compute::STENCIL;
        f.scalar = f.scalar || a.scalar;
    }
    return f;
}

Violation make(ViolationKind kind, const Entry& e, std::string msg)
{
    Violation v;
    v.kind = kind;
    v.message = std::move(msg);
    v.containerA = e.container;
    v.device = e.dev;
    return v;
}

std::string where(const Entry& e, const std::string& dataName)
{
    std::ostringstream os;
    os << e.container << " @ dev " << e.dev << ": '" << dataName << "'";
    return os.str();
}

/// Diff one (container, device) entry: observations aggregated per uid (in
/// load order) against the declared access list.
void diffEntry(const Entry& e, AnalysisReport& rep)
{
    std::vector<uint64_t>           order;
    std::map<uint64_t, AccessObs>   byUid;
    std::map<uint64_t, std::string> nameOf;
    const size_t n = e.loads.size() < e.obs.size() ? e.loads.size() : e.obs.size();
    for (size_t i = 0; i < n; ++i) {
        const auto& lm = e.loads[i];
        auto [it, fresh] = byUid.try_emplace(lm.uid);
        if (fresh) {
            order.push_back(lm.uid);
            nameOf[lm.uid] = lm.name;
        }
        it->second.merge(e.obs[i]);
    }
    for (const uint64_t uid : order) {
        const AccessObs& o = byUid[uid];
        ++rep.pairsChecked;
        if (!o.touched()) {
            continue;  // overdeclaration is judged across all devices
        }
        const DeclFacts    d = factsFor(e, uid);
        const std::string& nm = nameOf[uid];
        if (!d.declared) {
            if (o.read) {
                rep.violations.push_back(make(
                    ViolationKind::UndeclaredRead, e,
                    where(e, nm) + " read without a declared access (loadUnchecked?)"));
            }
            if (o.written) {
                rep.violations.push_back(make(
                    ViolationKind::UndeclaredWrite, e,
                    where(e, nm) + " written without a declared access (loadUnchecked?)"));
            }
        } else {
            if (o.written && !d.write) {
                rep.violations.push_back(make(ViolationKind::WriteViaReadAccess, e,
                                              where(e, nm) + " written via a READ-declared access"));
            }
            if (o.stencil && !d.stencil && !d.scalar) {
                rep.violations.push_back(
                    make(ViolationKind::UndeclaredStencil, e,
                         where(e, nm) + " neighbour-read but declared Compute::MAP — derived "
                                        "schedules run no halo update (stale-halo bug)"));
            }
        }
        if (o.stencil && o.maxExtent > e.haloRadius) {
            std::ostringstream os;
            os << where(e, nm) << " neighbour offset extent " << o.maxExtent
               << " exceeds the halo radius " << e.haloRadius;
            rep.violations.push_back(make(ViolationKind::StencilRadiusExceeded, e, os.str()));
        }
        if (o.outOfSpan) {
            std::ostringstream os;
            os << where(e, nm) << " written outside the launched span (slot " << o.outOfSpanSlot
               << ")";
            rep.violations.push_back(make(ViolationKind::OutOfSpanWrite, e, os.str()));
        }
    }
}

/// OverdeclaredAccess is a per-container verdict: a declared uid that no
/// device's kernel ever touched. (A uid touched on some devices only is
/// fine — boundary-empty partitions legitimately skip work.)
void diffOverdeclared(const std::vector<Entry>& entries, AnalysisReport& rep)
{
    std::map<uint64_t, std::vector<const Entry*>> bySeq;
    for (const Entry& e : entries) {
        bySeq[e.seq].push_back(&e);
    }
    std::vector<std::pair<std::string, uint64_t>> groups;
    groups.reserve(bySeq.size());
    for (const auto& [seq, group] : bySeq) {
        groups.emplace_back(group.front()->container, seq);
    }
    std::sort(groups.begin(), groups.end());
    for (const auto& [name, seq] : groups) {
        const auto& group = bySeq[seq];
        const Entry& first = *group.front();
        std::unordered_set<uint64_t> seen;
        for (const auto& a : first.declared) {
            if (!seen.insert(a.uid).second) {
                continue;
            }
            bool touched = false;
            for (const Entry* e : group) {
                const size_t n = e->loads.size() < e->obs.size() ? e->loads.size()
                                                                 : e->obs.size();
                for (size_t i = 0; i < n && !touched; ++i) {
                    touched = e->loads[i].uid == a.uid && e->obs[i].touched();
                }
            }
            if (!touched) {
                Violation v;
                v.kind = ViolationKind::OverdeclaredAccess;
                v.containerA = name;
                v.message = name + ": '" + a.name +
                            "' declared but never touched on any device — the declaration "
                            "only inflates dependency edges";
                rep.violations.push_back(std::move(v));
            }
        }
    }
}

AnalysisReport diffEntries(const std::vector<Entry>& entries)
{
    AnalysisReport rep;
    rep.opsAnalyzed = entries.size();
    for (const Entry& e : entries) {
        diffEntry(e, rep);
    }
    diffOverdeclared(entries, rep);
    return rep;
}

std::atomic<bool> gSanitizeViolationSeen{false};

void sanitizeExitHook()
{
    const AnalysisReport rep = AccessSanitizer::diff();
    reportSanitizeViolations(rep);
    if (gSanitizeViolationSeen.load(std::memory_order_relaxed)) {
        std::fflush(nullptr);
        std::_Exit(4);
    }
}

}  // namespace

AnalysisReport AccessSanitizer::diff()
{
    return diffEntries(set::sanitize::Session::instance().snapshot());
}

AnalysisReport AccessSanitizer::diff(const std::vector<uint64_t>& onlySeqs)
{
    const std::unordered_set<uint64_t> keep(onlySeqs.begin(), onlySeqs.end());
    std::vector<Entry>                 filtered;
    for (Entry& e : set::sanitize::Session::instance().snapshot()) {
        if (keep.count(e.seq) != 0) {
            filtered.push_back(std::move(e));
        }
    }
    return diffEntries(filtered);
}

void AccessSanitizer::reset()
{
    set::sanitize::Session::instance().clear();
}

bool sanitizeEnvEnabled()
{
    return set::sanitize::envEnabled();
}

void reportSanitizeViolations(const AnalysisReport& report)
{
    if (report.clean()) {
        return;
    }
    gSanitizeViolationSeen.store(true, std::memory_order_relaxed);
    std::fprintf(stderr, "[neon-sanitize] %zu violation(s)\n", report.violations.size());
    for (const auto& v : report.violations) {
        std::fprintf(stderr, "[neon-sanitize]   %s: %s\n", to_string(v.kind).c_str(),
                     v.message.c_str());
    }
}

void installSanitizeExitHook()
{
    static std::once_flag once;
    std::call_once(once, [] {
        // Touch the session before registering the hook: function-local
        // statics are destroyed in reverse construction order, so the
        // session outlives the atexit diff below.
        (void)set::sanitize::Session::instance();
        std::atexit(sanitizeExitHook);
    });
}

}  // namespace neon::analysis
