#include "analysis/race_detector.hpp"

#include <algorithm>

namespace neon::analysis {

namespace {

constexpr size_t kMaxEventClocks = 16384;  ///< prune threshold (see below)

uint64_t slotKey(int device, int stream)
{
    return (static_cast<uint64_t>(static_cast<uint32_t>(device)) << 32) |
           static_cast<uint32_t>(stream);
}

}  // namespace

int RaceDetector::slotOf(int device, int stream)
{
    auto [it, inserted] = mSlots.try_emplace(slotKey(device, stream),
                                             static_cast<int>(mVC.size()));
    if (inserted) {
        mVC.emplace_back();
    }
    return it->second;
}

bool RaceDetector::happensBefore(const Prev& p, const Clock& cur)
{
    return p.slot >= 0 && p.slot < static_cast<int>(cur.size()) &&
           cur[static_cast<size_t>(p.slot)] >= p.clock;
}

void RaceDetector::joinInto(Clock& dst, const Clock& src)
{
    if (dst.size() < src.size()) {
        dst.resize(src.size(), 0);
    }
    for (size_t i = 0; i < src.size(); ++i) {
        dst[i] = std::max(dst[i], src[i]);
    }
}

std::string RaceDetector::segName(const Segment& s) const
{
    auto it = mFieldName.find(s.uid);
    return to_string(s, it == mFieldName.end() ? "" : it->second);
}

void RaceDetector::race(const char* flavor, const Segment& s, const Prev& a, const Prev& b)
{
    const std::string key = std::string(flavor) + "|" + std::to_string(s.uid) + "|" +
                            std::to_string(static_cast<int>(s.part)) + "|" +
                            std::to_string(a.node) + "|" + std::to_string(b.node);
    if (!mDedup.insert(key).second) {
        return;
    }
    Violation v;
    v.kind = ViolationKind::Race;
    v.nodeA = a.node;
    v.nodeB = b.node;
    v.containerA = a.label;
    v.containerB = b.label;
    v.runA = a.run;
    v.runB = b.run;
    v.device = b.device;
    v.message = std::string(flavor) + " race on " + segName(s) + ": '" + a.label + "' (node " +
                std::to_string(a.node) + ", run " + std::to_string(a.run) + ", dev " +
                std::to_string(a.device) + ") vs '" + b.label + "' (node " +
                std::to_string(b.node) + ", run " + std::to_string(b.run) + ", dev " +
                std::to_string(b.device) + ") — no happens-before ordering";
    mReport.violations.push_back(std::move(v));
}

void RaceDetector::onRead(const Segment& s, const Prev& cur, const Clock& vc)
{
    SegState& st = mSegs[s];
    if (st.hasWrite && !happensBefore(st.write, vc)) {
        race("RaW", s, st.write, cur);
    }
    for (auto& rd : st.reads) {
        if (rd.slot == cur.slot) {
            rd = cur;  // FIFO: the newer read dominates on its own stream
            return;
        }
    }
    st.reads.push_back(cur);
}

void RaceDetector::onWrite(const Segment& s, const Prev& cur, const Clock& vc)
{
    SegState& st = mSegs[s];
    if (st.hasWrite && !happensBefore(st.write, vc)) {
        race("WaW", s, st.write, cur);
    }
    for (const Prev& rd : st.reads) {
        if (!happensBefore(rd, vc)) {
            race("WaR", s, rd, cur);
        }
    }
    st.write = cur;
    st.hasWrite = true;
    st.reads.clear();
}

void RaceDetector::pruneEvents()
{
    if (mEventClock.size() <= kMaxEventClocks) {
        return;
    }
    // Event clocks are only joined by waits shortly after their record (the
    // skeleton references events within a run plus the next run's barrier),
    // so dropping the oldest half is safe by a wide margin. Dropped ids are
    // remembered so a late wait is treated as a known no-op join rather
    // than a wait-before-record inversion.
    const size_t drop = mEventClock.size() / 2;
    size_t       dropped = 0;
    size_t       i = 0;
    for (; i < mEventOrder.size() && dropped < drop; ++i) {
        if (mEventClock.erase(mEventOrder[i]) > 0) {
            mPrunedEvents.insert(mEventOrder[i]);
            ++dropped;
        }
    }
    mEventOrder.erase(mEventOrder.begin(), mEventOrder.begin() + static_cast<ptrdiff_t>(i));
}

void RaceDetector::feed(const sys::ScheduleRecord& r, const sys::ContainerMetaMap* meta)
{
    ++mReport.opsAnalyzed;
    const int slot = slotOf(r.device, r.stream);
    Clock&    vc = mVC[static_cast<size_t>(slot)];
    if (vc.size() <= static_cast<size_t>(slot)) {
        vc.resize(static_cast<size_t>(slot) + 1, 0);
    }

    switch (r.kind) {
        case sys::ScheduleOpKind::Record: {
            mEventClock[r.eventId] = vc;
            mEventOrder.push_back(r.eventId);
            if (auto it = mPendingWaits.find(r.eventId); it != mPendingWaits.end()) {
                Violation v;
                v.kind = ViolationKind::WaitBeforeRecord;
                v.nodeB = it->second.containerId;
                v.runB = it->second.runId;
                v.device = it->second.device;
                v.message = "wait on event " + std::to_string(r.eventId) + " (dev " +
                            std::to_string(it->second.device) + " stream " +
                            std::to_string(it->second.stream) +
                            ") was enqueued before the event was recorded";
                mReport.violations.push_back(std::move(v));
                mPendingWaits.erase(it);
            }
            pruneEvents();
            return;
        }
        case sys::ScheduleOpKind::Wait: {
            if (auto it = mEventClock.find(r.eventId); it != mEventClock.end()) {
                joinInto(vc, it->second);
            } else if (mPrunedEvents.count(r.eventId) == 0) {
                // Unknown event: either recorded before logging was enabled
                // (silent no-op join) or an inversion we flag if its record
                // shows up later.
                mPendingWaits.emplace(r.eventId, r);
            }
            return;
        }
        default: break;  // Kernel / Transfer / HostFn: real work below
    }

    vc[static_cast<size_t>(slot)] += 1;
    const sys::ContainerMeta* m = nullptr;
    if (meta != nullptr && r.containerId >= 0) {
        if (auto it = meta->find(r.containerId); it != meta->end()) {
            m = &it->second;
        }
    }
    if (m == nullptr) {
        return;  // unattributed op: advances the clock, carries no accesses
    }

    // Remember field names and which uids have a halo provider this run.
    for (const auto& a : m->accesses) {
        if (!a.name.empty()) {
            mFieldName.try_emplace(a.uid, a.name);
        }
    }
    auto haloIt = mHaloUids.find(meta);
    if (haloIt == mHaloUids.end()) {
        std::unordered_set<uint64_t> uids;
        for (const auto& [id, cm] : *meta) {
            if (cm.kind == sys::MetaNodeKind::Halo) {
                for (const auto& a : cm.accesses) {
                    uids.insert(a.uid);
                }
            }
        }
        haloIt = mHaloUids.emplace(meta, std::move(uids)).first;
    }

    // Structural stale-halo check: a stencil that reads a halo'd field in a
    // run whose graph carries no halo-update node for it reads stale ghosts.
    if (mDevCount > 1 && m->view != DataView::INTERNAL) {
        for (const auto& a : m->accesses) {
            if (a.stencilHalo && haloIt->second.count(a.uid) == 0) {
                const std::string key =
                    "stale|" + std::to_string(a.uid) + "|" + std::to_string(r.containerId);
                if (mDedup.insert(key).second) {
                    Violation v;
                    v.kind = ViolationKind::StaleHaloRead;
                    v.nodeB = r.containerId;
                    v.containerB = m->label;
                    v.runB = r.runId;
                    v.device = r.device;
                    v.message = "'" + m->label + "' (node " + std::to_string(r.containerId) +
                                ", run " + std::to_string(r.runId) +
                                ") stencil-reads halo of '" + a.name +
                                "' but the run's graph has no halo-update node for it";
                    mReport.violations.push_back(std::move(v));
                }
            }
        }
    }

    const Prev cur{slot, vc[static_cast<size_t>(slot)], r.containerId, r.runId, r.device,
                   m->label};
    const AccessSets sets = segmentsFor(*m, r.device, mDevCount);
    for (const Segment& s : sets.reads) {
        onRead(s, cur, vc);
    }
    for (const Segment& s : sets.writes) {
        onWrite(s, cur, vc);
    }
}

AnalysisReport RaceDetector::takeNew()
{
    AnalysisReport out;
    out.opsAnalyzed = mReport.opsAnalyzed;
    out.violations.assign(mReport.violations.begin() + static_cast<ptrdiff_t>(mNewFrom),
                          mReport.violations.end());
    mNewFrom = mReport.violations.size();
    return out;
}

namespace {

/// Shared per-record meta resolution with a one-entry cache (records of one
/// run arrive consecutively).
class MetaResolver
{
   public:
    explicit MetaResolver(const sys::ScheduleLog& log) : mLog(log) {}

    const sys::ContainerMetaMap* resolve(int runId)
    {
        if (runId != mLastRun) {
            mLastRun = runId;
            mLastMap = runId >= 0 ? mLog.metaForRun(runId) : nullptr;
        }
        return mLastMap.get();
    }

   private:
    const sys::ScheduleLog&                 mLog;
    int                                     mLastRun = -2;
    std::shared_ptr<const sys::ContainerMetaMap> mLastMap;
};

struct DrainState
{
    RaceDetector detector;
    size_t       cursor = 0;
    explicit DrainState(int devCount) : detector(devCount) {}
};

}  // namespace

AnalysisReport raceReport(const sys::ScheduleLog& log, int devCount)
{
    RaceDetector det(devCount);
    MetaResolver metas(log);
    for (const auto& r : log.records()) {
        det.feed(r, metas.resolve(r.runId));
    }
    return det.report();
}

AnalysisReport drainRaces(sys::ScheduleLog& log, int devCount)
{
    auto state = std::static_pointer_cast<DrainState>(log.consumerState());
    if (state == nullptr) {
        state = std::make_shared<DrainState>(devCount);
        log.consumerState() = state;
    }
    const auto   recs = log.recordsFrom(state->cursor);
    MetaResolver metas(log);
    for (const auto& r : recs) {
        state->detector.feed(r, metas.resolve(r.runId));
    }
    state->cursor += recs.size();
    return state->detector.takeNew();
}

}  // namespace neon::analysis
