#include "analysis/env.hpp"

#include <atomic>
#include <cstdio>
#include <cstdlib>
#include <mutex>

#include "analysis/race_detector.hpp"
#include "set/backend.hpp"

namespace neon::analysis {

namespace {

std::atomic<bool> gViolationSeen{false};

void exitHook()
{
    if (gViolationSeen.load(std::memory_order_relaxed)) {
        std::fflush(nullptr);
        std::_Exit(3);
    }
}

}  // namespace

bool envEnabled()
{
    static const bool on = [] {
        const char* v = std::getenv("NEON_ANALYSIS");
        const bool  enabled = v != nullptr && *v != '\0' && std::string(v) != "0";
        if (enabled) {
            std::fprintf(stderr, "[neon-analysis] enabled\n");
        }
        return enabled;
    }();
    return on;
}

void installEnvHooks(const set::Backend& backend)
{
    sys::ScheduleLog& log = backend.engine().scheduleLog();
    if (log.enabled()) {
        return;  // this backend's hooks are already in place
    }
    log.enable();
    const int devCount = backend.devCount();
    // The callback is owned by the log it drains, so the reference capture
    // cannot outlive its target.
    log.setSyncCallback([&log, devCount] {
        const AnalysisReport rep = drainRaces(log, devCount);
        if (!rep.clean()) {
            reportEnvViolations("race detector", rep);
        }
    });
}

void reportEnvViolations(const std::string& what, const AnalysisReport& report)
{
    if (report.clean()) {
        return;
    }
    static std::once_flag atexitOnce;
    std::call_once(atexitOnce, [] { std::atexit(exitHook); });
    gViolationSeen.store(true, std::memory_order_relaxed);
    std::fprintf(stderr, "[neon-analysis] %s: %zu violation(s)\n", what.c_str(),
                 report.violations.size());
    for (const auto& v : report.violations) {
        std::fprintf(stderr, "[neon-analysis]   %s: %s\n", to_string(v.kind).c_str(),
                     v.message.c_str());
    }
}

}  // namespace neon::analysis
