#include "analysis/graph_lint.hpp"

#include <algorithm>
#include <queue>
#include <unordered_map>
#include <unordered_set>

#include "analysis/access_model.hpp"
#include "analysis/node_meta.hpp"

namespace neon::analysis {

namespace {

using skeleton::EdgeKind;
using skeleton::Graph;
using skeleton::Task;
using skeleton::WaitScope;

using SegSet = std::unordered_set<Segment, SegmentHash>;

struct NodeSets
{
    SegSet reads;
    SegSet writes;
};

struct LintContext
{
    const Graph&                    g;
    int                             devCount;
    std::vector<int>                alive;
    std::vector<sys::ContainerMeta> meta;      // by node id
    std::vector<NodeSets>           sets;      // union over devices, by id
    std::vector<std::vector<bool>>  reach;     // data-edge reachability
};

Violation pairViolation(ViolationKind kind, const Graph& g, int a, int b, std::string message)
{
    Violation v;
    v.kind = kind;
    v.nodeA = a;
    v.nodeB = b;
    if (a >= 0) {
        v.containerA = g.node(a).label();
    }
    if (b >= 0) {
        v.containerB = g.node(b).label();
    }
    v.message = std::move(message);
    return v;
}

/// Kahn's algorithm over data + hint edges; returns ids stuck in a cycle.
std::vector<int> findCycle(const Graph& g)
{
    const int        n = g.nodeCount();
    std::vector<int> pending(static_cast<size_t>(n), 0);
    std::queue<int>  q;
    int              alive = 0;
    for (int id = 0; id < n; ++id) {
        if (!g.node(id).alive) {
            continue;
        }
        ++alive;
        pending[static_cast<size_t>(id)] = static_cast<int>(g.parents(id, true).size());
        if (pending[static_cast<size_t>(id)] == 0) {
            q.push(id);
        }
    }
    int visited = 0;
    while (!q.empty()) {
        const int id = q.front();
        q.pop();
        ++visited;
        for (int c : g.children(id, true)) {
            if (--pending[static_cast<size_t>(c)] == 0) {
                q.push(c);
            }
        }
    }
    std::vector<int> stuck;
    if (visited != alive) {
        for (int id = 0; id < n; ++id) {
            if (g.node(id).alive && pending[static_cast<size_t>(id)] > 0) {
                stuck.push_back(id);
            }
        }
    }
    return stuck;
}

LintContext buildContext(const Graph& g, int devCount)
{
    LintContext ctx{g, devCount, {}, {}, {}, {}};
    const int   n = g.nodeCount();
    ctx.meta.resize(static_cast<size_t>(n));
    ctx.sets.resize(static_cast<size_t>(n));
    for (int id = 0; id < n; ++id) {
        if (!g.node(id).alive) {
            continue;
        }
        ctx.alive.push_back(id);
        ctx.meta[static_cast<size_t>(id)] = metaFor(g.node(id), devCount);
        auto& ns = ctx.sets[static_cast<size_t>(id)];
        for (int d = 0; d < devCount; ++d) {
            const AccessSets s = segmentsFor(ctx.meta[static_cast<size_t>(id)], d, devCount);
            ns.reads.insert(s.reads.begin(), s.reads.end());
            ns.writes.insert(s.writes.begin(), s.writes.end());
        }
    }
    // Data-edge reachability (BFS per node; graphs are small).
    ctx.reach.assign(static_cast<size_t>(n), std::vector<bool>(static_cast<size_t>(n), false));
    for (int src : ctx.alive) {
        std::queue<int> q;
        q.push(src);
        auto& row = ctx.reach[static_cast<size_t>(src)];
        while (!q.empty()) {
            const int id = q.front();
            q.pop();
            for (int c : g.dataChildren(id)) {
                if (!row[static_cast<size_t>(c)]) {
                    row[static_cast<size_t>(c)] = true;
                    q.push(c);
                }
            }
        }
    }
    return ctx;
}

/// Segment-level conflict: a common segment written by at least one side.
bool segmentConflict(const NodeSets& a, const NodeSets& b)
{
    for (const Segment& s : a.writes) {
        if (b.writes.count(s) > 0 || b.reads.count(s) > 0) {
            return true;
        }
    }
    for (const Segment& s : b.writes) {
        if (a.reads.count(s) > 0) {
            return true;
        }
    }
    return false;
}

/// Uid-level conflict: a uid both nodes access with at least one WRITE.
bool uidConflict(const sys::ContainerMeta& a, const sys::ContainerMeta& b)
{
    for (const auto& aa : a.accesses) {
        for (const auto& ba : b.accesses) {
            if (aa.uid == ba.uid &&
                (aa.access == Access::WRITE || ba.access == Access::WRITE)) {
                return true;
            }
        }
    }
    return false;
}

bool writesUid(const sys::ContainerMeta& m, uint64_t uid)
{
    return std::any_of(m.accesses.begin(), m.accesses.end(), [&](const sys::MetaAccess& a) {
        return a.uid == uid && a.access == Access::WRITE;
    });
}

void checkCoverage(const LintContext& ctx, AnalysisReport& rep)
{
    for (size_t i = 0; i < ctx.alive.size(); ++i) {
        for (size_t j = i + 1; j < ctx.alive.size(); ++j) {
            const int u = ctx.alive[i];
            const int v = ctx.alive[j];
            ++rep.pairsChecked;
            if (!segmentConflict(ctx.sets[static_cast<size_t>(u)],
                                 ctx.sets[static_cast<size_t>(v)])) {
                continue;
            }
            if (ctx.reach[static_cast<size_t>(u)][static_cast<size_t>(v)] ||
                ctx.reach[static_cast<size_t>(v)][static_cast<size_t>(u)]) {
                continue;
            }
            rep.violations.push_back(pairViolation(
                ViolationKind::MissingDependency, ctx.g, u, v,
                "'" + ctx.g.node(u).label() + "' (node " + std::to_string(u) + ") and '" +
                    ctx.g.node(v).label() + "' (node " + std::to_string(v) +
                    ") have conflicting accesses but no dependency path orders them"));
        }
    }
}

void checkEdges(const LintContext& ctx, AnalysisReport& rep)
{
    for (const auto& e : ctx.g.edges()) {
        if (e.kind == EdgeKind::Hint) {
            continue;
        }
        ++rep.edgesChecked;
        if (!uidConflict(ctx.meta[static_cast<size_t>(e.from)],
                         ctx.meta[static_cast<size_t>(e.to)])) {
            rep.violations.push_back(pairViolation(
                ViolationKind::SpuriousEdge, ctx.g, e.from, e.to,
                to_string(e.kind) + " edge '" + ctx.g.node(e.from).label() + "' -> '" +
                    ctx.g.node(e.to).label() + "' orders nodes that share no written data"));
        }
    }
}

void checkHaloFreshness(const LintContext& ctx, AnalysisReport& rep)
{
    if (ctx.devCount <= 1) {
        return;
    }
    for (int s : ctx.alive) {
        const auto& m = ctx.meta[static_cast<size_t>(s)];
        if (m.kind != sys::MetaNodeKind::Compute || m.view == DataView::INTERNAL) {
            continue;
        }
        for (const auto& a : m.accesses) {
            if (!a.stencilHalo) {
                continue;
            }
            // Need a halo-update node H with a path H ~> s and no non-halo
            // writer of the field on a path in between (which would restale
            // the halo H refreshed).
            bool fresh = false;
            for (int h : ctx.alive) {
                const auto& hm = ctx.meta[static_cast<size_t>(h)];
                if (hm.kind != sys::MetaNodeKind::Halo || !writesUid(hm, a.uid)) {
                    continue;
                }
                if (!ctx.reach[static_cast<size_t>(h)][static_cast<size_t>(s)]) {
                    continue;
                }
                bool restaled = false;
                for (int w : ctx.alive) {
                    const auto& wm = ctx.meta[static_cast<size_t>(w)];
                    if (w == h || w == s || wm.kind == sys::MetaNodeKind::Halo ||
                        !writesUid(wm, a.uid)) {
                        continue;
                    }
                    if (ctx.reach[static_cast<size_t>(h)][static_cast<size_t>(w)] &&
                        ctx.reach[static_cast<size_t>(w)][static_cast<size_t>(s)]) {
                        restaled = true;
                        break;
                    }
                }
                if (!restaled) {
                    fresh = true;
                    break;
                }
            }
            if (!fresh) {
                Violation v = pairViolation(
                    ViolationKind::StaleHaloRead, ctx.g, -1, s,
                    "'" + ctx.g.node(s).label() + "' (node " + std::to_string(s) +
                        ") stencil-reads the halo of '" + a.name +
                        "' with no fresh halo-update node ordered before it" +
                        (ctx.g.node(s).coherent ? "" : " (node is marked incoherent)"));
                rep.violations.push_back(std::move(v));
            }
        }
    }
}

void checkSchedule(const LintContext& ctx, const std::vector<Task>& tasks, int nStreams,
                   AnalysisReport& rep)
{
    const Graph& g = ctx.g;

    // Dead nodes must not appear in any scheduling state (satellite fix:
    // Graph::killNode resets them; this is the machine check).
    for (int id = 0; id < g.nodeCount(); ++id) {
        const auto& n = g.node(id);
        if (!n.alive && (n.level != -1 || n.stream != -1 || n.needsEvent)) {
            rep.violations.push_back(pairViolation(
                ViolationKind::DeadNodeScheduled, g, id, -1,
                "dead node " + std::to_string(id) + " ('" + n.label() +
                    "') still carries scheduling state (level/stream/event)"));
        }
    }

    std::unordered_map<int, size_t> order;
    std::unordered_map<int, const Task*> taskOf;
    for (size_t i = 0; i < tasks.size(); ++i) {
        const Task& t = tasks[i];
        if (!g.node(t.nodeId).alive) {
            rep.violations.push_back(
                pairViolation(ViolationKind::DeadNodeScheduled, g, t.nodeId, -1,
                              "dead node " + std::to_string(t.nodeId) + " ('" +
                                  g.node(t.nodeId).label() + "') appears in the task list"));
            continue;
        }
        order[t.nodeId] = i;
        taskOf[t.nodeId] = &t;
    }

    for (int id : ctx.alive) {
        const auto& n = g.node(id);
        if (n.level < 0 || n.stream < 0 || n.stream >= nStreams) {
            rep.violations.push_back(pairViolation(
                ViolationKind::LevelOrder, g, id, -1,
                "alive node " + std::to_string(id) + " ('" + n.label() +
                    "') has no valid level/stream assignment (level " +
                    std::to_string(n.level) + ", stream " + std::to_string(n.stream) + ")"));
        }
        if (order.find(id) == order.end()) {
            rep.violations.push_back(pairViolation(
                ViolationKind::LevelOrder, g, id, -1,
                "alive node " + std::to_string(id) + " ('" + n.label() +
                    "') is missing from the task list"));
        }
    }

    for (const auto& e : g.edges()) {
        const auto& u = g.node(e.from);
        const auto& v = g.node(e.to);
        const auto  ou = order.find(e.from);
        const auto  ov = order.find(e.to);
        if (ou != order.end() && ov != order.end() && ou->second > ov->second) {
            rep.violations.push_back(pairViolation(
                ViolationKind::LevelOrder, g, e.from, e.to,
                "task list runs '" + v.label() + "' before its " + to_string(e.kind) +
                    " parent '" + u.label() + "'"));
        }
        if (e.kind == EdgeKind::Hint) {
            continue;
        }
        if (u.level >= v.level) {
            rep.violations.push_back(pairViolation(
                ViolationKind::LevelOrder, g, e.from, e.to,
                to_string(e.kind) + " edge '" + u.label() + "' (level " +
                    std::to_string(u.level) + ") -> '" + v.label() + "' (level " +
                    std::to_string(v.level) + ") contradicts the level assignment"));
        }
        const WaitScope scope = g.waitScope(e.from, e.to);
        if (scope == WaitScope::SameDev && u.stream == v.stream) {
            continue;  // FIFO order on the shared stream suffices
        }
        const Task* vt = (ov != order.end()) ? taskOf[e.to] : nullptr;
        const bool  hasWait =
            vt != nullptr && std::any_of(vt->waits.begin(), vt->waits.end(),
                                         [&](const Task::Wait& w) { return w.parent == e.from; });
        if (!hasWait) {
            rep.violations.push_back(pairViolation(
                ViolationKind::MissingWait, g, e.from, e.to,
                "'" + v.label() + "' depends on '" + u.label() + "' (" + to_string(e.kind) +
                    ", scope " + to_string(scope) +
                    ") across streams but its task carries no event wait on it"));
        } else if (!u.needsEvent) {
            rep.violations.push_back(pairViolation(
                ViolationKind::MissingWait, g, e.from, e.to,
                "'" + v.label() + "' waits on '" + u.label() +
                    "' but the parent records no completion event"));
        }
    }
}

AnalysisReport lintImpl(const Graph& g, const std::vector<Task>* tasks, int nStreams,
                        int devCount)
{
    AnalysisReport rep;
    if (const std::vector<int> stuck = findCycle(g); !stuck.empty()) {
        std::string names;
        for (int id : stuck) {
            names += (names.empty() ? "" : ", ") + g.node(id).label();
        }
        rep.violations.push_back(pairViolation(
            ViolationKind::GraphCycle, g, stuck.front(), -1,
            "dependency graph contains a cycle through: " + names));
        return rep;  // downstream checks assume a DAG
    }
    const LintContext ctx = buildContext(g, devCount);
    checkCoverage(ctx, rep);
    checkEdges(ctx, rep);
    checkHaloFreshness(ctx, rep);
    if (tasks != nullptr) {
        checkSchedule(ctx, *tasks, nStreams, rep);
    }
    return rep;
}

}  // namespace

AnalysisReport lintGraph(const Graph& graph, int devCount)
{
    return lintImpl(graph, nullptr, 0, devCount);
}

AnalysisReport lintSchedule(const Graph& graph, const std::vector<Task>& tasks, int nStreams,
                            int devCount)
{
    return lintImpl(graph, &tasks, nStreams, devCount);
}

}  // namespace neon::analysis
