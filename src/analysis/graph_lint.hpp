#pragma once
// Dependency-graph lint (neon::analysis, docs/analysis.md). Re-derives the
// *expected* conflicts from the containers' access records — segment-level
// for coverage, uid-level for edge justification — and diffs them against
// the graph the Skeleton actually built and scheduled:
//
//  - missingDependency: two nodes with a segment-level conflict and no
//    data-edge path between them in either direction;
//  - spuriousEdge: a data edge whose endpoints share no written uid;
//  - staleHaloRead: a halo-reading stencil with no halo-update provider on
//    a path before it (fresh: no non-halo writer in between);
//  - graphCycle, levelOrder (level/stream/task order contradicting an
//    edge), deadNodeScheduled, missingWait (cross-stream dependency with
//    no event wait in the task list).
//
// The two conflict granularities differ on purpose: coverage must not
// demand edges the segment model proves unnecessary (the OCC splits), and
// edge justification must not flag the uid-level edges buildGraph
// deliberately adds (e.g. a global-scalar read ordered against a partial
// write it never touches).

#include <vector>

#include "analysis/report.hpp"
#include "skeleton/graph.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::analysis {

/// Structural checks only (no schedule yet).
AnalysisReport lintGraph(const skeleton::Graph& graph, int devCount);

/// Structural checks plus level/stream/task-order/event-wait checks.
AnalysisReport lintSchedule(const skeleton::Graph&            graph,
                            const std::vector<skeleton::Task>& tasks, int nStreams,
                            int devCount);

}  // namespace neon::analysis
