#pragma once
// Bridge from skeleton graph nodes to the core-typed ContainerMeta the
// schedule log carries (neon::analysis). The Skeleton registers one meta
// map per run window; the race detector resolves each logged op's
// containerId through it to obtain read/write segment sets.

#include <memory>

#include "skeleton/graph.hpp"
#include "sys/schedule_log.hpp"

namespace neon::analysis {

/// Distill one graph node's container (access records, kind, view, halo
/// receiver lists) into core types.
sys::ContainerMeta metaFor(const skeleton::GraphNode& node, int devCount);

/// Meta for every alive node of `graph`, keyed by node id.
std::shared_ptr<const sys::ContainerMetaMap> metaMapFor(const skeleton::Graph& graph,
                                                        int                    devCount);

}  // namespace neon::analysis
