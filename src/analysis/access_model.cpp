#include "analysis/access_model.hpp"

#include <algorithm>

namespace neon::analysis {

std::string to_string(Part p)
{
    switch (p) {
        case Part::Internal: return "int";
        case Part::Boundary: return "bdr";
        case Part::HaloLo: return "halo-";
        case Part::HaloHi: return "halo+";
        case Part::Partial: return "partial";
        case Part::Global: return "global";
    }
    return "?";
}

std::string to_string(const Segment& s, const std::string& fieldName)
{
    std::string out = fieldName.empty() ? "uid" + std::to_string(s.uid) : fieldName;
    out += "." + to_string(s.part);
    if (s.dev >= 0) {
        out += "@d" + std::to_string(s.dev);
    }
    return out;
}

namespace {

void addUnique(std::vector<Segment>& v, Segment s)
{
    if (std::find(v.begin(), v.end(), s) == v.end()) {
        v.push_back(s);
    }
}

/// Field parts touched by one access of a Compute node on its own device.
void fieldParts(std::vector<Segment>& out, const sys::MetaAccess& a, DataView view, int dev,
                int devCount)
{
    if (a.access == Access::READ && a.compute == Compute::STENCIL) {
        // A stencil neighbourhood spills across the view split: internal
        // cells border boundary cells and boundary cells border the halo.
        addUnique(out, {a.uid, dev, Part::Internal});
        addUnique(out, {a.uid, dev, Part::Boundary});
        if (view != DataView::INTERNAL && devCount > 1) {
            // Claim only the halo halves a neighbour actually feeds
            // (MetaAccess::haloLoFed/haloHiFed, derived from HaloOps::peers).
            // Empty vectors mean the feed info is unknown (hand-built metas):
            // fall back to the dense rule — every interior side has a
            // neighbour, edge devices only one.
            const auto idx = static_cast<size_t>(dev);
            const bool loFed = idx < a.haloLoFed.size() ? a.haloLoFed[idx] != 0 : dev > 0;
            const bool hiFed =
                idx < a.haloHiFed.size() ? a.haloHiFed[idx] != 0 : dev + 1 < devCount;
            if (loFed) {
                addUnique(out, {a.uid, dev, Part::HaloLo});
            }
            if (hiFed) {
                addUnique(out, {a.uid, dev, Part::HaloHi});
            }
        }
        return;
    }
    // Cell-local access: exactly the iterated view partition.
    if (view == DataView::INTERNAL) {
        addUnique(out, {a.uid, dev, Part::Internal});
    } else if (view == DataView::BOUNDARY) {
        addUnique(out, {a.uid, dev, Part::Boundary});
    } else {
        addUnique(out, {a.uid, dev, Part::Internal});
        addUnique(out, {a.uid, dev, Part::Boundary});
    }
}

}  // namespace

AccessSets segmentsFor(const sys::ContainerMeta& meta, int dev, int devCount)
{
    AccessSets sets;

    if (meta.kind == sys::MetaNodeKind::Halo) {
        // The op on `dev` reads dev's boundary cells and writes them into
        // the neighbours' halo buffers. A device with no receiving peers
        // (zero-count segment lists toward both sides) performs no work, so
        // it claims nothing — unless the peer info is absent (hand-built
        // metas), where the dense read claim is kept as a safe default.
        for (const auto& a : meta.accesses) {
            const bool havePeers = dev >= 0 && dev < static_cast<int>(meta.haloPeers.size());
            if (!havePeers || !meta.haloPeers[static_cast<size_t>(dev)].empty()) {
                addUnique(sets.reads, {a.uid, dev, Part::Boundary});
            }
            if (havePeers) {
                for (int p : meta.haloPeers[static_cast<size_t>(dev)]) {
                    // dev fills the half of p's halo that faces it.
                    addUnique(sets.writes,
                              {a.uid, p, dev < p ? Part::HaloLo : Part::HaloHi});
                }
            }
        }
        return sets;
    }

    if (meta.kind == sys::MetaNodeKind::ScalarOp) {
        // Host fn on device 0's stream. Reads see the global value and (for
        // the reduce combine) every device's partials; writes broadcast the
        // global value.
        for (const auto& a : meta.accesses) {
            if (a.access == Access::READ) {
                addUnique(sets.reads, {a.uid, -1, Part::Global});
                for (int d = 0; d < devCount; ++d) {
                    addUnique(sets.reads, {a.uid, d, Part::Partial});
                }
            } else {
                addUnique(sets.writes, {a.uid, -1, Part::Global});
            }
        }
        return sets;
    }

    for (const auto& a : meta.accesses) {
        if (a.scalar) {
            if (a.access == Access::WRITE) {
                // Reduce kernels write their device's partial slots.
                addUnique(sets.writes, {a.uid, dev, Part::Partial});
            } else {
                addUnique(sets.reads, {a.uid, -1, Part::Global});
            }
            continue;
        }
        fieldParts(a.access == Access::READ ? sets.reads : sets.writes, a, meta.view, dev,
                   devCount);
    }
    return sets;
}

}  // namespace neon::analysis
