#pragma once
// AccessSanitizer: diff what sanitized kernels actually did (the merged
// set::sanitize::Session observations, see set/sanitize.hpp) against what
// their Loaders declared, reporting typed violations through
// AnalysisReport (docs/analysis.md, "Access sanitizer"):
//
//   UndeclaredRead / UndeclaredWrite — touched a uid with no declaration
//       (reachable through Loader::loadUnchecked),
//   WriteViaReadAccess   — declared READ only, but wrote,
//   UndeclaredStencil    — declared MAP, but read a neighbour (the
//                          stale-halo bug class: no halo node is derived),
//   StencilRadiusExceeded — neighbour offset beyond the grid halo radius,
//   OutOfSpanWrite       — wrote a cell outside the launched view's span,
//   OverdeclaredAccess   — declared but never touched on any device
//                          (inflates edges, serializes service jobs).
//
// Enabled per run via Container::launch(..., sanitized), per skeleton via
// SequenceOptions::withSanitize / Skeleton::validate(Deep), or process-wide
// via NEON_SANITIZE=1 (exit code 4 on findings — distinct from the graph
// lint / race detector's exit 3).

#include <cstdint>
#include <vector>

#include "analysis/report.hpp"

namespace neon::analysis {

class AccessSanitizer
{
   public:
    /// Diff every committed (container, device) entry. Deterministic order:
    /// entries by (container name, device, creation ordinal), uids in load
    /// order within an entry.
    [[nodiscard]] static AnalysisReport diff();

    /// Same, restricted to containers whose creation ordinal
    /// (Container::sanitizeSeq) is in `onlySeqs` — Skeleton::validate(Deep)
    /// uses this to scope the verdict to its own graph.
    [[nodiscard]] static AnalysisReport diff(const std::vector<uint64_t>& onlySeqs);

    /// Drop all recorded observations (test isolation between cases).
    static void reset();
};

/// True iff NEON_SANITIZE is enabled (forwards set::sanitize::envEnabled,
/// which prints the "[neon-sanitize] enabled" marker on first hit).
[[nodiscard]] bool sanitizeEnvEnabled();

/// Print the report's violations to stderr with the [neon-sanitize] prefix
/// and latch process exit code 4. No-op on a clean report.
void reportSanitizeViolations(const AnalysisReport& report);

/// Register an atexit hook that runs diff() when the process ends and
/// fails it (exit 4) on violations — the NEON_SANITIZE=1 path used by
/// tools/neon-lint --sanitize. Idempotent.
void installSanitizeExitHook();

}  // namespace neon::analysis
