#pragma once
// Segment model: the unit of data the analysis reasons about. A partitioned
// field contributes three segments per device (internal cells, boundary
// cells, halo/ghost cells); a GlobalScalar contributes one global segment
// (host value + device mirrors, written as a broadcast) and one coarse
// partial segment per device (the reduction slots). Two ops conflict iff
// they touch a common segment and at least one writes it.
//
// Granularity notes (docs/analysis.md):
//  - Partial is per (uid, device), deliberately ignoring the per-view slot:
//    the two-way OCC reduce split writes slot 0 and 1 of the same device
//    and the paper mandates a WaW edge between the halves — slot-precise
//    segments would declare that edge spurious.
//  - A stencil's INTERNAL half reads internal + boundary cells (its
//    neighbourhood stays on-device); any other stencil view also reads the
//    halo when more than one device exists.

#include <cstdint>
#include <string>
#include <vector>

#include "sys/schedule_log.hpp"

namespace neon::analysis {

enum class Part : uint8_t
{
    Internal,  ///< field: internal cells of one device
    Boundary,  ///< field: boundary cells of one device
    /// Field: the halo/ghost layer filled by the *lower* neighbour (d-1).
    /// Halo halves are separate segments because the two neighbours write
    /// disjoint slices concurrently — one coarse halo segment would turn
    /// every multi-peer halo update into a spurious WaW.
    HaloLo,
    HaloHi,   ///< field: halo layer filled by the upper neighbour (d+1)
    Partial,  ///< scalar: reduction partials of one device
    Global,   ///< scalar: host value + all device mirrors
};

std::string to_string(Part p);

struct Segment
{
    uint64_t uid = 0;
    int      dev = -1;  ///< -1 for Part::Global
    Part     part = Part::Internal;

    bool operator==(const Segment&) const = default;
};

struct SegmentHash
{
    size_t operator()(const Segment& s) const
    {
        size_t h = std::hash<uint64_t>{}(s.uid);
        h ^= std::hash<int>{}(s.dev) + 0x9e3779b9 + (h << 6) + (h >> 2);
        h ^= static_cast<size_t>(s.part) + 0x9e3779b9 + (h << 6) + (h >> 2);
        return h;
    }
};

std::string to_string(const Segment& s, const std::string& fieldName = "");

struct AccessSets
{
    std::vector<Segment> reads;
    std::vector<Segment> writes;
};

/// Read/write segments of node `meta`'s op on device `dev`.
/// Halo nodes read their device's boundary and write the neighbours'
/// halos (per the halo segment list); ScalarOps run on device 0 and read
/// global + every partial, write global; Compute nodes map their field
/// accesses through view/pattern and their scalar accesses through
/// global/partial.
AccessSets segmentsFor(const sys::ContainerMeta& meta, int dev, int devCount);

}  // namespace neon::analysis
