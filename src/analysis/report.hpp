#pragma once
// AnalysisReport: structured verdicts of the dependency-graph lint and the
// happens-before race detector (neon::analysis, docs/analysis.md). A
// violation carries container/run/device attribution so it can be rendered
// next to the ExecutionReport and chrome trace of the offending run.

#include <cstdint>
#include <string>
#include <vector>

namespace neon::analysis {

enum class ViolationKind : uint8_t
{
    MissingDependency,  ///< conflicting accesses with no dependency path
    SpuriousEdge,       ///< data edge between nodes sharing no written data
    StaleHaloRead,      ///< stencil halo read with no halo-update provider
    GraphCycle,         ///< dependency graph is not a DAG
    LevelOrder,         ///< level/stream/task order contradicts an edge
    DeadNodeScheduled,  ///< alive == false node leaked into scheduling state
    MissingWait,        ///< cross-stream dependency without an event wait
    Race,               ///< conflicting ops not ordered by happens-before
    WaitBeforeRecord,   ///< wait enqueued before its event's record
    // Access-contract sanitizer verdicts (analysis/sanitizer.hpp): the
    // kernel's observed behaviour vs its declared Loader accesses.
    UndeclaredRead,         ///< read a uid the container never declared
    UndeclaredWrite,        ///< wrote a uid the container never declared
    WriteViaReadAccess,     ///< declared READ only, but wrote
    UndeclaredStencil,      ///< declared MAP, but read a neighbour
    StencilRadiusExceeded,  ///< neighbour offset beyond the halo radius
    OutOfSpanWrite,         ///< wrote a cell outside the launched span
    OverdeclaredAccess,     ///< declared, but never touched on any device
};

std::string to_string(ViolationKind k);

struct Violation
{
    ViolationKind kind = ViolationKind::Race;
    std::string   message;
    // Attribution. A/B are the two parties of a pairwise violation (the
    // earlier party first); single-party violations fill A only. Values are
    // -1 / empty when unknown or not applicable.
    int         nodeA = -1;  ///< skeleton graph-node id
    int         nodeB = -1;
    std::string containerA;  ///< node label, e.g. "sten3.bdr"
    std::string containerB;
    int         runA = -1;  ///< run() window id (race detector only)
    int         runB = -1;
    int         device = -1;  ///< device of the later op (race detector only)
};

struct AnalysisReport
{
    std::vector<Violation> violations;
    size_t                 opsAnalyzed = 0;   ///< schedule records consumed
    size_t                 edgesChecked = 0;  ///< graph edges examined
    size_t                 pairsChecked = 0;  ///< node pairs examined

    [[nodiscard]] bool   clean() const { return violations.empty(); }
    [[nodiscard]] size_t count(ViolationKind k) const;

    /// Fold `other` into this report (violations append, counters add).
    void merge(const AnalysisReport& other);

    /// One line per violation plus a counter summary.
    [[nodiscard]] std::string toString() const;
    /// e.g. "3 violation(s): 2 race, 1 missingWait" or "clean".
    [[nodiscard]] std::string summary() const;
    /// JSON object (tooling; same spirit as ExecutionReport::toJson).
    [[nodiscard]] std::string toJson() const;
};

}  // namespace neon::analysis
