#include "analysis/node_meta.hpp"

namespace neon::analysis {

sys::ContainerMeta metaFor(const skeleton::GraphNode& node, int devCount)
{
    sys::ContainerMeta m;
    m.label = node.label();
    m.view = node.view;
    m.pattern = node.pattern();
    switch (node.kind()) {
        case set::Container::Kind::Compute: m.kind = sys::MetaNodeKind::Compute; break;
        case set::Container::Kind::Halo: m.kind = sys::MetaNodeKind::Halo; break;
        case set::Container::Kind::ScalarOp: m.kind = sys::MetaNodeKind::ScalarOp; break;
    }
    std::shared_ptr<const set::HaloOps> halo;
    for (const auto& a : node.container.accesses()) {
        sys::MetaAccess ma{a.uid, a.access, a.compute, a.scalar, a.halo != nullptr, a.name, {}, {}};
        if (a.halo != nullptr) {
            // Which halo halves are actually fed: device d's lower half
            // receives segments iff d-1 lists d as a peer (and symmetrically
            // for the upper half). Segment-list fields (BField) can have
            // empty boundaries toward a neighbour, so this is narrower than
            // the dense ±1 rule.
            ma.haloLoFed.resize(static_cast<size_t>(devCount), 0);
            ma.haloHiFed.resize(static_cast<size_t>(devCount), 0);
            for (int d = 0; d < devCount; ++d) {
                for (int p : a.halo->peers(d)) {
                    if (p < 0 || p >= devCount) {
                        continue;
                    }
                    // d fills the half of p's halo that faces it (the same
                    // orientation rule segmentsFor uses for Halo nodes).
                    auto& fed = d < p ? ma.haloLoFed : ma.haloHiFed;
                    fed[static_cast<size_t>(p)] = 1;
                }
            }
        }
        m.accesses.push_back(std::move(ma));
        if (a.halo != nullptr) {
            halo = a.halo;
        }
    }
    if (m.kind == sys::MetaNodeKind::Halo && halo != nullptr) {
        m.haloPeers.resize(static_cast<size_t>(devCount));
        for (int d = 0; d < devCount; ++d) {
            m.haloPeers[static_cast<size_t>(d)] = halo->peers(d);
        }
    }
    return m;
}

std::shared_ptr<const sys::ContainerMetaMap> metaMapFor(const skeleton::Graph& graph,
                                                        int                    devCount)
{
    auto map = std::make_shared<sys::ContainerMetaMap>();
    for (int id = 0; id < graph.nodeCount(); ++id) {
        if (graph.node(id).alive) {
            (*map)[id] = metaFor(graph.node(id), devCount);
        }
    }
    return map;
}

}  // namespace neon::analysis
