#include "analysis/node_meta.hpp"

namespace neon::analysis {

sys::ContainerMeta metaFor(const skeleton::GraphNode& node, int devCount)
{
    sys::ContainerMeta m;
    m.label = node.label();
    m.view = node.view;
    m.pattern = node.pattern();
    switch (node.kind()) {
        case set::Container::Kind::Compute: m.kind = sys::MetaNodeKind::Compute; break;
        case set::Container::Kind::Halo: m.kind = sys::MetaNodeKind::Halo; break;
        case set::Container::Kind::ScalarOp: m.kind = sys::MetaNodeKind::ScalarOp; break;
    }
    std::shared_ptr<const set::HaloOps> halo;
    for (const auto& a : node.container.accesses()) {
        m.accesses.push_back({a.uid, a.access, a.compute, a.scalar, a.halo != nullptr, a.name});
        if (a.halo != nullptr) {
            halo = a.halo;
        }
    }
    if (m.kind == sys::MetaNodeKind::Halo && halo != nullptr) {
        m.haloPeers.resize(static_cast<size_t>(devCount));
        for (int d = 0; d < devCount; ++d) {
            m.haloPeers[static_cast<size_t>(d)] = halo->peers(d);
        }
    }
    return m;
}

std::shared_ptr<const sys::ContainerMetaMap> metaMapFor(const skeleton::Graph& graph,
                                                        int                    devCount)
{
    auto map = std::make_shared<sys::ContainerMetaMap>();
    for (int id = 0; id < graph.nodeCount(); ++id) {
        if (graph.node(id).alive) {
            (*map)[id] = metaFor(graph.node(id), devCount);
        }
    }
    return map;
}

}  // namespace neon::analysis
