#pragma once
// NEON_ANALYSIS=1 environment switch (docs/analysis.md). When the variable
// is set, Skeleton::sequence() lints every schedule it builds and
// Backend::sync() drains the race detector; any violation is printed to
// stderr and latches the process exit code to 3 so tools/neon-lint can run
// unmodified examples and benches under the detector and fail on findings.

#include <string>

#include "analysis/report.hpp"

namespace neon::set {
class Backend;
}

namespace neon::analysis {

/// True iff NEON_ANALYSIS is set to a non-empty value other than "0".
/// Read once; the first enabled query prints the "[neon-analysis] enabled"
/// marker tools/neon-lint keys on to tell instrumented from plain runs.
bool envEnabled();

/// Enable schedule logging on the backend's engine and hook the race
/// detector drain into Backend::sync(). Idempotent per backend.
void installEnvHooks(const set::Backend& backend);

/// Print the report's violations to stderr and latch exit code 3 (via an
/// atexit hook) so an otherwise-passing example fails visibly. No-op on a
/// clean report.
void reportEnvViolations(const std::string& what, const AnalysisReport& report);

}  // namespace neon::analysis
