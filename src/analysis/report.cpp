#include "analysis/report.hpp"

#include <algorithm>
#include <array>
#include <sstream>

namespace neon::analysis {

std::string to_string(ViolationKind k)
{
    switch (k) {
        case ViolationKind::MissingDependency: return "missingDependency";
        case ViolationKind::SpuriousEdge: return "spuriousEdge";
        case ViolationKind::StaleHaloRead: return "staleHaloRead";
        case ViolationKind::GraphCycle: return "graphCycle";
        case ViolationKind::LevelOrder: return "levelOrder";
        case ViolationKind::DeadNodeScheduled: return "deadNodeScheduled";
        case ViolationKind::MissingWait: return "missingWait";
        case ViolationKind::Race: return "race";
        case ViolationKind::WaitBeforeRecord: return "waitBeforeRecord";
        case ViolationKind::UndeclaredRead: return "undeclaredRead";
        case ViolationKind::UndeclaredWrite: return "undeclaredWrite";
        case ViolationKind::WriteViaReadAccess: return "writeViaReadAccess";
        case ViolationKind::UndeclaredStencil: return "undeclaredStencil";
        case ViolationKind::StencilRadiusExceeded: return "stencilRadiusExceeded";
        case ViolationKind::OutOfSpanWrite: return "outOfSpanWrite";
        case ViolationKind::OverdeclaredAccess: return "overdeclaredAccess";
    }
    return "?";
}

namespace {

constexpr std::array<ViolationKind, 16> kAllKinds = {
    ViolationKind::MissingDependency,     ViolationKind::SpuriousEdge,
    ViolationKind::StaleHaloRead,         ViolationKind::GraphCycle,
    ViolationKind::LevelOrder,            ViolationKind::DeadNodeScheduled,
    ViolationKind::MissingWait,           ViolationKind::Race,
    ViolationKind::WaitBeforeRecord,      ViolationKind::UndeclaredRead,
    ViolationKind::UndeclaredWrite,       ViolationKind::WriteViaReadAccess,
    ViolationKind::UndeclaredStencil,     ViolationKind::StencilRadiusExceeded,
    ViolationKind::OutOfSpanWrite,        ViolationKind::OverdeclaredAccess,
};

std::string jsonEscape(const std::string& s)
{
    std::string out;
    out.reserve(s.size());
    for (char c : s) {
        switch (c) {
            case '"': out += "\\\""; break;
            case '\\': out += "\\\\"; break;
            case '\n': out += "\\n"; break;
            default: out += c; break;
        }
    }
    return out;
}

}  // namespace

size_t AnalysisReport::count(ViolationKind k) const
{
    return static_cast<size_t>(std::count_if(violations.begin(), violations.end(),
                                             [&](const Violation& v) { return v.kind == k; }));
}

void AnalysisReport::merge(const AnalysisReport& other)
{
    violations.insert(violations.end(), other.violations.begin(), other.violations.end());
    opsAnalyzed += other.opsAnalyzed;
    edgesChecked += other.edgesChecked;
    pairsChecked += other.pairsChecked;
}

std::string AnalysisReport::summary() const
{
    if (clean()) {
        return "clean";
    }
    std::ostringstream os;
    os << violations.size() << " violation(s):";
    bool first = true;
    for (ViolationKind k : kAllKinds) {
        if (const size_t n = count(k); n > 0) {
            os << (first ? " " : ", ") << n << " " << to_string(k);
            first = false;
        }
    }
    return os.str();
}

std::string AnalysisReport::toString() const
{
    std::ostringstream os;
    os << "analysis: " << summary() << " (" << opsAnalyzed << " ops, " << edgesChecked
       << " edges, " << pairsChecked << " pairs checked)\n";
    for (const Violation& v : violations) {
        os << "  [" << to_string(v.kind) << "] " << v.message << "\n";
    }
    return os.str();
}

std::string AnalysisReport::toJson() const
{
    std::ostringstream os;
    os << "{\"opsAnalyzed\":" << opsAnalyzed << ",\"edgesChecked\":" << edgesChecked
       << ",\"pairsChecked\":" << pairsChecked << ",\"violations\":[";
    for (size_t i = 0; i < violations.size(); ++i) {
        const Violation& v = violations[i];
        os << (i > 0 ? "," : "") << "{\"kind\":\"" << to_string(v.kind) << "\",\"message\":\""
           << jsonEscape(v.message) << "\",\"nodeA\":" << v.nodeA << ",\"nodeB\":" << v.nodeB
           << ",\"containerA\":\"" << jsonEscape(v.containerA) << "\",\"containerB\":\""
           << jsonEscape(v.containerB) << "\",\"runA\":" << v.runA << ",\"runB\":" << v.runB
           << ",\"device\":" << v.device << "}";
    }
    os << "]}";
    return os.str();
}

}  // namespace neon::analysis
