#pragma once
// Happens-before race detector over the ScheduleLog (neon::analysis,
// docs/analysis.md). Every (device, stream) pair owns a vector clock;
// work ops tick their stream's component, event records snapshot the
// stream's clock, event waits join the snapshot in. Each op's read/write
// segment sets (access_model.hpp, resolved through the per-run
// ContainerMeta maps) are checked against per-segment epochs: the last
// write plus the per-stream reads since. A conflicting pair not ordered by
// the resulting partial order is a race — regardless of which engine
// happened to execute the schedule, because the log is engine-independent.

#include <memory>
#include <string>
#include <unordered_map>
#include <unordered_set>
#include <vector>

#include "analysis/access_model.hpp"
#include "analysis/report.hpp"
#include "sys/schedule_log.hpp"

namespace neon::analysis {

/// Incremental detector: feed() records strictly in enqueue order.
class RaceDetector
{
   public:
    explicit RaceDetector(int devCount) : mDevCount(devCount) {}

    /// Consume one record. `meta` is the ContainerMeta map of the record's
    /// run window (may be null: unattributed ops advance clocks but carry
    /// no read/write sets).
    void feed(const sys::ScheduleRecord& r, const sys::ContainerMetaMap* meta);

    /// All findings so far (cumulative).
    [[nodiscard]] const AnalysisReport& report() const { return mReport; }
    /// Findings added since the previous takeNew() (for incremental drains).
    [[nodiscard]] AnalysisReport takeNew();

   private:
    struct Prev  // one prior access to a segment
    {
        int         slot = -1;
        uint64_t    clock = 0;
        int         node = -1;
        int         run = -1;
        int         device = -1;
        std::string label;
    };
    struct SegState
    {
        bool              hasWrite = false;
        Prev              write;
        std::vector<Prev> reads;  ///< newest read per slot since the write
    };

    using Clock = std::vector<uint64_t>;

    int           slotOf(int device, int stream);
    static bool   happensBefore(const Prev& p, const Clock& cur);
    static void   joinInto(Clock& dst, const Clock& src);
    void          onRead(const Segment& s, const Prev& cur, const Clock& vc);
    void          onWrite(const Segment& s, const Prev& cur, const Clock& vc);
    void          race(const char* flavor, const Segment& s, const Prev& a, const Prev& b);
    void          pruneEvents();
    [[nodiscard]] std::string segName(const Segment& s) const;

    int mDevCount = 1;

    std::unordered_map<uint64_t, int> mSlots;  ///< (dev,stream) -> clock index
    std::vector<Clock>                mVC;     ///< per-slot vector clock

    std::unordered_map<uint64_t, Clock> mEventClock;
    std::vector<uint64_t>               mEventOrder;  ///< for pruning
    std::unordered_set<uint64_t>        mPrunedEvents;
    /// Waits seen before their event's record (enqueue-order inversion).
    std::unordered_map<uint64_t, sys::ScheduleRecord> mPendingWaits;

    std::unordered_map<Segment, SegState, SegmentHash> mSegs;
    std::unordered_map<uint64_t, std::string>          mFieldName;
    /// Meta maps whose halo-carrying uids were already collected.
    std::unordered_map<const sys::ContainerMetaMap*, std::unordered_set<uint64_t>> mHaloUids;

    std::unordered_set<std::string> mDedup;
    AnalysisReport                  mReport;
    size_t                          mNewFrom = 0;
};

/// One-shot: analyze every record currently in `log`.
AnalysisReport raceReport(const sys::ScheduleLog& log, int devCount);

/// Incremental: analyze only records appended since the previous drain
/// (detector state lives in log.consumerState()); returns new findings.
AnalysisReport drainRaces(sys::ScheduleLog& log, int devCount);

}  // namespace neon::analysis
