#pragma once
// GlobalScalar<T>: a single value with one mirror per device plus per-device
// partial accumulators — the output of a ReduceOp (paper §III-b) and the
// carrier for solver scalars (alpha/beta in CG, Listing 3) so that skeletons
// can be built once and run many iterations.

#include <array>
#include <limits>
#include <memory>
#include <string>

#include "core/error.hpp"
#include "core/types.hpp"
#include "set/access.hpp"
#include "set/backend.hpp"
#include "sys/device.hpp"

namespace neon::set {

/// Combination operator of a reduction (paper §III-b: "a user-defined
/// binary and associative operation").
enum class ReduceOp : uint8_t
{
    Sum,
    Max,
    Min,
};

template <typename T>
class GlobalScalar
{
   public:
    /// Marker the Loader uses to stamp access records as scalar accesses
    /// (neon::analysis segments scalars by global/partial, not by view).
    static constexpr bool kIsGlobalScalar = true;

    GlobalScalar() = default;

    GlobalScalar(Backend backend, std::string name, T initial = T{},
                 ReduceOp op = ReduceOp::Sum)
        : mImpl(std::make_shared<Impl>())
    {
        mImpl->backend = std::move(backend);
        mImpl->name = std::move(name);
        mImpl->op = op;
        mImpl->uid = Backend::newDataUid();
        const int n = mImpl->backend.devCount();
        mImpl->devCopies.resize(static_cast<size_t>(n), nullptr);
        for (int d = 0; d < n; ++d) {
            mImpl->devCopies[static_cast<size_t>(d)] =
                static_cast<T*>(mImpl->backend.device(d).alloc(sizeof(T)));
        }
        mImpl->partials.assign(static_cast<size_t>(n), {T{}, T{}});
        set(initial);
    }

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }

    /// Host-side value. Only meaningful after the writing run was synced.
    [[nodiscard]] T hostValue() const { return mImpl->hostValue; }

    /// Set the value on the host and broadcast to every device mirror.
    void set(T v)
    {
        mImpl->hostValue = v;
        if (!mImpl->backend.isDryRun()) {
            for (T* p : mImpl->devCopies) {
                *p = v;
            }
        }
    }

    /// Per-(device, view-slot) partial written by reduce kernels.
    /// Slot 0: STANDARD/INTERNAL, slot 1: BOUNDARY.
    void setPartial(int dev, int slot, T v)
    {
        mImpl->partials[static_cast<size_t>(dev)][static_cast<size_t>(slot)] = v;
    }

    [[nodiscard]] T partial(int dev, int slot) const
    {
        return mImpl->partials[static_cast<size_t>(dev)][static_cast<size_t>(slot)];
    }

    static constexpr int slotOf(DataView view) { return view == DataView::BOUNDARY ? 1 : 0; }

    [[nodiscard]] ReduceOp reduceOp() const { return mImpl->op; }

    /// Neutral element of the reduction operator; reduce kernels start
    /// their accumulator here and reset unused partial slots to it.
    [[nodiscard]] T identity() const
    {
        switch (mImpl->op) {
            case ReduceOp::Sum: return T{};
            case ReduceOp::Max: return std::numeric_limits<T>::lowest();
            case ReduceOp::Min: return std::numeric_limits<T>::max();
        }
        return T{};
    }

    /// Fold a value into an accumulator with this scalar's operator.
    void fold(T& acc, T v) const
    {
        switch (mImpl->op) {
            case ReduceOp::Sum: acc += v; break;
            case ReduceOp::Max: acc = v > acc ? v : acc; break;
            case ReduceOp::Min: acc = v < acc ? v : acc; break;
        }
    }

    /// Combine all partials into the host value and broadcast to the
    /// devices. Runs as the combine step of a reduction (device 0 stream).
    void combinePartials()
    {
        T acc = identity();
        for (const auto& p : mImpl->partials) {
            fold(acc, p[0]);
            fold(acc, p[1]);
        }
        set(acc);
    }

    // --- Loader/data interface (see Loader::load) -------------------------
    [[nodiscard]] uint64_t           uid() const { return mImpl->uid; }
    [[nodiscard]] const std::string& name() const { return mImpl->name; }
    [[nodiscard]] double             bytesPerItem(Compute = Compute::MAP) const { return 0.0; }
    [[nodiscard]] std::shared_ptr<const HaloOps> haloOps() const { return nullptr; }

    /// Device-side read view: `alpha()` inside a compute lambda.
    struct View
    {
        const T* ptr = nullptr;
        T        operator()() const { return *ptr; }
    };

    [[nodiscard]] View getPartition(int dev, DataView) const
    {
        return View{mImpl->devCopies[static_cast<size_t>(dev)]};
    }

    [[nodiscard]] Backend& backend() const { return mImpl->backend; }

   private:
    struct Impl
    {
        Backend                        backend;
        std::string                    name;
        ReduceOp                       op = ReduceOp::Sum;
        uint64_t                       uid = 0;
        T                              hostValue = T{};
        std::vector<T*>                devCopies;
        std::vector<std::array<T, 2>>  partials;

        ~Impl()
        {
            for (size_t d = 0; d < devCopies.size(); ++d) {
                backend.device(static_cast<int>(d)).free(devCopies[d]);
            }
        }
    };
    std::shared_ptr<Impl> mImpl;
};

}  // namespace neon::set
