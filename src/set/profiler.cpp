#include "set/profiler.hpp"

#include <fstream>

#include "core/error.hpp"

namespace neon::set {

void Profiler::writeChromeTrace(const std::string& path) const
{
    std::ofstream out(path);
    NEON_CHECK(out.good(), "cannot open '" + path + "' for writing");
    out << chromeTrace();
    NEON_CHECK(out.good(), "writing chrome trace to '" + path + "' failed");
}

ExecutionReport Profiler::report() const
{
    return ExecutionReport::fromEntries(trace().entries(), mBackend.devCount());
}

ExecutionReport Profiler::report(int firstRunId, int lastRunId) const
{
    return ExecutionReport::fromEntries(trace().entriesForRuns(firstRunId, lastRunId),
                                        mBackend.devCount());
}

}  // namespace neon::set
