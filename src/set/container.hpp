#pragma once
// Container: the multi-GPU kernel concept (paper §IV-B2). A Container wraps
// a *loading lambda* which, given a Loader, returns the *compute lambda*
// operating on partition local views. Run once in parsing mode it yields the
// access list used for dependency analysis; run in execution mode per device
// it yields the device-specific kernel.

#include <functional>
#include <memory>
#include <string>
#include <utility>

#include "core/error.hpp"
#include "core/types.hpp"
#include "domain/concepts.hpp"
#include "set/access.hpp"
#include "set/backend.hpp"
#include "set/loader.hpp"
#include "set/scalar.hpp"

namespace neon::set {

class Container
{
   public:
    /// What a graph node made from this container does.
    enum class Kind : uint8_t
    {
        Compute,   ///< map/stencil/reduce kernel over a grid span
        Halo,      ///< haloUpdate transfers for one field
        ScalarOp,  ///< host-side scalar work (reduce combine, alpha/beta)
    };

    Container() = default;

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }

    /// Build a compute container from a grid and a loading lambda
    /// `fn(Loader&) -> computeLambda(const Grid::Cell&)`.
    template <typename Grid, typename LoadingLambda>
    static Container factory(std::string name, const Grid& grid, LoadingLambda fn)
    {
        static_assert(neon::domain::GridConcept<Grid>,
                      "Container::factory requires a type satisfying "
                      "neon::domain::GridConcept (see docs/domain.md)");
        Container c;
        c.mImpl = std::make_shared<Impl>();
        c.mImpl->name = std::move(name);
        c.mImpl->kind = Kind::Compute;
        c.mImpl->devCount = grid.devCount();
        c.mImpl->parser = [grid, fn](AccessList& rec) mutable {
            Loader loader = Loader::parsing(&rec);
            (void)fn(loader);
        };
        c.mImpl->itemsFn = [grid](int dev, DataView view) { return grid.span(dev, view).count(); };
        c.mImpl->launcher = [grid, fn, name = c.mImpl->name](int dev, sys::Stream& stream,
                                                             DataView                  view,
                                                             const sys::KernelCostHint& hint) mutable {
            auto span = grid.span(dev, view);
            if (span.count() == 0) {
                return;  // empty view (e.g. BOUNDARY on a single device)
            }
            Loader loader = Loader::execution(dev, view);
            auto   kernel = fn(loader);
            stream.kernel(name, span.count(), hint,
                          [span, kernel]() mutable { span.forEach(kernel); });
        };
        return c;
    }

    /// Build a reduction container: `fn(Loader&) -> lambda(const Cell&, T& acc)`
    /// accumulating (by +) into per-device partials of `result`. Pair with
    /// `result.combineContainer()`-style node: the Skeleton inserts the
    /// combine automatically; manual users call runCombine().
    template <typename Grid, typename T, typename LoadingLambda>
    static Container reduceFactory(std::string name, const Grid& grid, GlobalScalar<T> result,
                                   LoadingLambda fn)
    {
        static_assert(neon::domain::GridConcept<Grid>,
                      "Container::reduceFactory requires a type satisfying "
                      "neon::domain::GridConcept (see docs/domain.md)");
        Container c;
        c.mImpl = std::make_shared<Impl>();
        c.mImpl->name = std::move(name);
        c.mImpl->kind = Kind::Compute;
        c.mImpl->forcedPattern = Compute::REDUCE;
        c.mImpl->hasForcedPattern = true;
        c.mImpl->devCount = grid.devCount();
        c.mImpl->parser = [grid, fn, result](AccessList& rec) mutable {
            Loader loader = Loader::parsing(&rec);
            (void)fn(loader);
            DataAccess out;
            out.uid = result.uid();
            out.access = Access::WRITE;
            out.compute = Compute::REDUCE;
            out.bytesPerItem = 0.0;
            out.name = result.name();
            out.scalar = true;
            rec.push_back(std::move(out));
        };
        c.mImpl->itemsFn = [grid](int dev, DataView view) { return grid.span(dev, view).count(); };
        c.mImpl->launcher = [grid, fn, result, name = c.mImpl->name](
                                int dev, sys::Stream& stream, DataView view,
                                const sys::KernelCostHint& hint) mutable {
            auto span = grid.span(dev, view);
            Loader loader = Loader::execution(dev, view);
            auto   kernel = fn(loader);
            // Always launch (even when empty): the partial slot must be
            // reset every iteration or stale partials leak across runs.
            stream.kernel(name, span.count(), hint, [span, kernel, result, dev, view]() mutable {
                T acc = result.identity();
                span.forEach([&](const auto& cell) { kernel(cell, acc); });
                result.setPartial(dev, GlobalScalar<T>::slotOf(view), acc);
                if (view == DataView::STANDARD) {
                    result.setPartial(dev, 1, result.identity());
                }
            });
        };
        // The combine step the Skeleton appends after the reduce kernels.
        Backend backend = grid.backend();
        c.mImpl->combine = std::make_shared<Container>(makeCombine(backend, result));
        return c;
    }

    /// Fuse two *map* loading lambdas into one kernel: per cell, `fnA`'s
    /// compute lambda runs before `fnB`'s. This implements (in user-directed
    /// form) the container fusion the paper defers to future work (§V-D:
    /// "the inability to optimize the single-GPU performance (e.g., via
    /// kernel/container fusion)"). Valid only for cell-local (map) bodies:
    /// if fnB stencil-reads data fnA writes, the fused kernel would read
    /// partially updated neighbours. The parse step runs both lambdas, so
    /// dependency analysis sees the union of their accesses; one kernel
    /// launch replaces two and the intermediate field never re-travels
    /// through memory in the cost model.
    template <typename Grid, typename LoadingLambdaA, typename LoadingLambdaB>
    static Container fusedFactory(std::string name, const Grid& grid, LoadingLambdaA fnA,
                                  LoadingLambdaB fnB)
    {
        auto fused = [fnA, fnB](Loader& loader) mutable {
            auto kernelA = fnA(loader);
            auto kernelB = fnB(loader);
            return [kernelA, kernelB](const auto& cell) mutable {
                kernelA(cell);
                kernelB(cell);
            };
        };
        return factory(std::move(name), grid, std::move(fused));
    }

    /// Host-side scalar computation (e.g. alpha = rsold / pAp). Runs on
    /// device 0's stream; downstream kernels see the broadcast device
    /// mirrors of the written scalars.
    template <typename T>
    static Container scalarOp(std::string name, Backend backend,
                              std::vector<GlobalScalar<T>> reads,
                              std::vector<GlobalScalar<T>> writes, std::function<void()> fn)
    {
        Container c;
        c.mImpl = std::make_shared<Impl>();
        c.mImpl->name = std::move(name);
        c.mImpl->kind = Kind::ScalarOp;
        c.mImpl->devCount = backend.devCount();
        const double dur = 2.0 * backend.config().link.latency + 1e-6;
        c.mImpl->parser = [reads, writes](AccessList& rec) {
            for (const auto& s : reads) {
                rec.push_back({s.uid(), Access::READ, Compute::MAP, 0.0, s.name(), nullptr, true});
            }
            for (const auto& s : writes) {
                rec.push_back({s.uid(), Access::WRITE, Compute::MAP, 0.0, s.name(), nullptr, true});
            }
        };
        c.mImpl->itemsFn = [](int, DataView) -> size_t { return 1; };
        c.mImpl->launcher = [fn, dur, name = c.mImpl->name](int dev, sys::Stream& stream, DataView,
                                                            const sys::KernelCostHint&) {
            if (dev != 0) {
                return;
            }
            stream.hostFn(name, dur, fn);
        };
        return c;
    }

    /// Halo-update container for one field (created by the Skeleton from a
    /// stencil-read access record; also usable manually at the Set level).
    static Container haloUpdate(std::shared_ptr<const HaloOps> halo);

    // --- queries ----------------------------------------------------------
    [[nodiscard]] const std::string& name() const;
    [[nodiscard]] Kind               kind() const;
    [[nodiscard]] int                devCount() const;
    /// Parsed access list (parses lazily on first call).
    [[nodiscard]] const AccessList& accesses() const;
    /// MAP / STENCIL / REDUCE, deduced from the access list (paper §V-A).
    [[nodiscard]] Compute pattern() const;
    /// Cost hint derived from the access list (DESIGN.md §4).
    [[nodiscard]] const sys::KernelCostHint& costHint() const;
    /// Number of work items for (device, view).
    [[nodiscard]] size_t items(int dev, DataView view) const;
    /// The companion combine container (valid for reduce containers only).
    [[nodiscard]] const Container& combineStep() const;
    [[nodiscard]] bool             isReduce() const;

    /// Enqueue this container's work for one device on `stream`.
    void launch(int dev, sys::Stream& stream, DataView view = DataView::STANDARD) const;

    /// Convenience: launch on stream set 0 of `backend` for every device
    /// (Set-level manual execution; the Skeleton does this per task).
    void run(const StreamSet& streams, DataView view = DataView::STANDARD) const;

   private:
    template <typename T>
    static Container makeCombine(Backend& backend, GlobalScalar<T> scalar)
    {
        Container c = scalarOp<T>("combine(" + scalar.name() + ")", backend, {scalar}, {scalar},
                                  [scalar]() mutable { scalar.combinePartials(); });
        return c;
    }

    struct Impl
    {
        std::string name;
        Kind        kind = Kind::Compute;
        int         devCount = 1;
        std::function<void(AccessList&)>                                           parser;
        std::function<size_t(int, DataView)>                                       itemsFn;
        std::function<void(int, sys::Stream&, DataView, const sys::KernelCostHint&)> launcher;
        std::shared_ptr<Container> combine;  ///< combine step for reductions

        // lazily parsed
        bool                parsed = false;
        AccessList          accessList;
        Compute             patternValue = Compute::MAP;
        Compute             forcedPattern = Compute::MAP;
        bool                hasForcedPattern = false;
        sys::KernelCostHint hint;

        void ensureParsed();
    };
    std::shared_ptr<Impl> mImpl;
};

}  // namespace neon::set
