#pragma once
// Container: the multi-GPU kernel concept (paper §IV-B2). A Container wraps
// a *loading lambda* which, given a Loader, returns the *compute lambda*
// operating on partition local views. Run once in parsing mode it yields the
// access list used for dependency analysis; run in execution mode per device
// it yields the device-specific kernel.

#include <functional>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/error.hpp"
#include "core/types.hpp"
#include "domain/concepts.hpp"
#include "set/access.hpp"
#include "set/backend.hpp"
#include "set/loader.hpp"
#include "set/sanitize.hpp"
#include "set/scalar.hpp"

namespace neon::set {

class Container
{
   public:
    /// What a graph node made from this container does.
    enum class Kind : uint8_t
    {
        Compute,   ///< map/stencil/reduce kernel over a grid span
        Halo,      ///< haloUpdate transfers for one field
        ScalarOp,  ///< host-side scalar work (reduce combine, alpha/beta)
    };

    Container() = default;

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }

    /// Build a compute container from a grid and a loading lambda
    /// `fn(Loader&) -> computeLambda(const Grid::Cell&)`.
    template <typename Grid, typename LoadingLambda>
    static Container factory(std::string name, const Grid& grid, LoadingLambda fn)
    {
        static_assert(neon::domain::GridConcept<Grid>,
                      "Container::factory requires a type satisfying "
                      "neon::domain::GridConcept (see docs/domain.md)");
        Container c;
        c.mImpl = std::make_shared<Impl>();
        c.mImpl->name = std::move(name);
        c.mImpl->kind = Kind::Compute;
        c.mImpl->devCount = grid.devCount();
        c.mImpl->seq = nextSeq();
        c.mImpl->parser = [grid, fn](AccessList& rec) mutable {
            Loader loader = Loader::parsing(&rec);
            (void)fn(loader);
        };
        // Devirtualized dispatch: one trampoline per (device, view) is
        // instantiated NOW, so launch() enqueues a precomputed KernelWork
        // with zero per-run span/kernel construction and exactly one
        // indirect call per chunk (docs/performance.md). The loop lives in
        // a stored rebuilder so a live container can re-derive its records
        // after the grid repartitions: the captured grid handle shares the
        // re-sliced Impl, so re-running the loop picks up the new spans.
        c.mImpl->rebuilder = [grid, fn](Impl& impl) mutable {
            impl.devCount = grid.devCount();
            impl.geomEpoch = grid.backend().geometryEpoch();
            impl.records.clear();
            for (int dev = 0; dev < impl.devCount; ++dev) {
                for (const DataView view : kAllViews) {
                    auto   span = grid.span(dev, view);
                    Loader loader = Loader::execution(dev, view);
                    using SpanT = decltype(span);
                    using KernelT = decltype(fn(loader));
                    struct Tramp
                    {
                        SpanT   sp;
                        KernelT kernel;
                        static void run(void* ctx, int32_t chunk, int32_t nChunks)
                        {
                            auto* t = static_cast<Tramp*>(ctx);
                            t->sp.forEachChunk(chunk, nChunks, t->kernel);
                        }
                    };
                    auto tramp = std::make_shared<Tramp>(Tramp{span, fn(loader)});
                    LaunchRecord rec;
                    rec.items = span.count();
                    rec.work.run = &Tramp::run;
                    rec.work.ctx = tramp.get();
                    rec.work.chunks = span.chunkCount();
                    rec.work.owner = std::move(tramp);
                    impl.records.push_back(std::move(rec));
                }
            }
        };
        c.mImpl->rebuilder(*c.mImpl);
        // Sanitized trampolines are built lazily on the first sanitized
        // launch: sanitize-off pays nothing beyond storing this closure.
        // Only generic (`auto&`) loading lambdas can be re-run against a
        // sanitize::Loader; concrete `set::Loader&` lambdas stay plain.
        if constexpr (std::is_invocable_v<LoadingLambda&, sanitize::Loader&>) {
            c.mImpl->sanBuilder = [grid, fn](Impl& impl) mutable {
                for (int dev = 0; dev < impl.devCount; ++dev) {
                    for (const DataView view : kAllViews) {
                        auto span = grid.span(dev, view);
                        auto meta = std::make_shared<sanitize::KernelMeta>();
                        meta->haloRadius = grid.haloRadius();
                        sanitize::Loader loader(dev, view, meta.get());
                        using SpanT = decltype(span);
                        using KernelT = decltype(fn(loader));
                        struct STramp
                        {
                            SpanT                                 sp;
                            KernelT                               kernel;
                            std::shared_ptr<sanitize::KernelMeta> meta;
                            std::vector<sanitize::Sink>           sinks;  ///< one per chunk
                            const Impl*                           impl;
                            int                                   dev;
                            static void run(void* ctx, int32_t chunk, int32_t nChunks)
                            {
                                auto* t = static_cast<STramp*>(ctx);
                                auto& sink = t->sinks[static_cast<size_t>(chunk)];
                                sink.clear();
                                sanitize::ChunkScope scope(&sink);
                                t->sp.forEachChunk(chunk, nChunks, t->kernel);
                            }
                            static void finalize(void* ctx, int32_t, int32_t nChunks)
                            {
                                auto* t = static_cast<STramp*>(ctx);
                                // Merge the chunk sinks in chunk order; every
                                // merge is monotone, so the result is bitwise
                                // identical for any NEON_THREADS.
                                std::vector<sanitize::AccessObs> merged(t->meta->loads.size());
                                for (int32_t i = 0; i < nChunks; ++i) {
                                    const auto& obs = t->sinks[static_cast<size_t>(i)].obs();
                                    for (size_t s = 0; s < merged.size(); ++s) {
                                        merged[s].merge(obs[s]);
                                    }
                                }
                                sanitize::Session::instance().commit(
                                    t->impl->seq, t->impl->name, t->dev, t->meta->haloRadius,
                                    t->impl->accessList, *t->meta, merged);
                            }
                        };
                        auto tramp = std::make_shared<STramp>(
                            STramp{span, fn(loader), meta, {}, &impl, dev});
                        tramp->sinks.resize(static_cast<size_t>(span.chunkCount()));
                        for (auto& s : tramp->sinks) {
                            s.configure(meta->loads.size(), span.range0(), span.range1());
                        }
                        LaunchRecord rec;
                        rec.items = span.count();
                        rec.work.run = &STramp::run;
                        rec.work.finalize = &STramp::finalize;
                        rec.work.ctx = tramp.get();
                        rec.work.chunks = span.chunkCount();
                        rec.work.sanitized = true;
                        rec.work.owner = std::move(tramp);
                        impl.sanRecords.push_back(std::move(rec));
                    }
                }
            };
        }
        return c;
    }

    /// Build a reduction container: `fn(Loader&) -> lambda(const Cell&, T& acc)`
    /// accumulating (by +) into per-device partials of `result`. Pair with
    /// `result.combineContainer()`-style node: the Skeleton inserts the
    /// combine automatically; manual users call runCombine().
    template <typename Grid, typename T, typename LoadingLambda>
    static Container reduceFactory(std::string name, const Grid& grid, GlobalScalar<T> result,
                                   LoadingLambda fn)
    {
        static_assert(neon::domain::GridConcept<Grid>,
                      "Container::reduceFactory requires a type satisfying "
                      "neon::domain::GridConcept (see docs/domain.md)");
        Container c;
        c.mImpl = std::make_shared<Impl>();
        c.mImpl->name = std::move(name);
        c.mImpl->kind = Kind::Compute;
        c.mImpl->forcedPattern = Compute::REDUCE;
        c.mImpl->hasForcedPattern = true;
        c.mImpl->devCount = grid.devCount();
        c.mImpl->seq = nextSeq();
        c.mImpl->parser = [grid, fn, result](AccessList& rec) mutable {
            Loader loader = Loader::parsing(&rec);
            (void)fn(loader);
            DataAccess out;
            out.uid = result.uid();
            out.access = Access::WRITE;
            out.compute = Compute::REDUCE;
            out.bytesPerItem = 0.0;
            out.name = result.name();
            out.scalar = true;
            rec.push_back(std::move(out));
        };
        // Chunked deterministic reduction: each chunk accumulates into its
        // own partial slot; finalize folds the partials with a fixed-shape
        // pairwise tree. The tree shape depends only on the chunk count
        // (itself span-derived), so the fold order — and the floating-point
        // result — is identical for any thread count. Stored as a rebuilder
        // for the same reason as factory(): repartition support.
        c.mImpl->rebuilder = [grid, fn, result](Impl& impl) mutable {
            impl.devCount = grid.devCount();
            impl.geomEpoch = grid.backend().geometryEpoch();
            impl.records.clear();
            for (int dev = 0; dev < impl.devCount; ++dev) {
            for (const DataView view : kAllViews) {
                auto   span = grid.span(dev, view);
                Loader loader = Loader::execution(dev, view);
                using SpanT = decltype(span);
                using KernelT = decltype(fn(loader));
                struct Tramp
                {
                    SpanT           sp;
                    KernelT         kernel;
                    GlobalScalar<T> out;
                    int             dev;
                    DataView        view;
                    std::vector<T>  partials;  ///< one slot per chunk
                    std::vector<T>  scratch;   ///< finalize-tree workspace
                    static void run(void* ctx, int32_t chunk, int32_t nChunks)
                    {
                        auto* t = static_cast<Tramp*>(ctx);
                        T     acc = t->out.identity();
                        t->sp.forEachChunk(chunk, nChunks,
                                           [&](const auto& cell) { t->kernel(cell, acc); });
                        t->partials[static_cast<size_t>(chunk)] = acc;
                    }
                    static void finalize(void* ctx, int32_t, int32_t nChunks)
                    {
                        auto* t = static_cast<Tramp*>(ctx);
                        auto& s = t->scratch;
                        s.assign(t->partials.begin(), t->partials.end());
                        // Fixed-shape pairwise binary tree over the chunk
                        // partials; a trailing odd element passes through.
                        for (int32_t n = nChunks; n > 1;) {
                            const int32_t pairs = n / 2;
                            for (int32_t i = 0; i < pairs; ++i) {
                                T folded = s[static_cast<size_t>(2 * i)];
                                t->out.fold(folded, s[static_cast<size_t>(2 * i + 1)]);
                                s[static_cast<size_t>(i)] = folded;
                            }
                            if (n % 2 == 1) {
                                s[static_cast<size_t>(pairs)] = s[static_cast<size_t>(n - 1)];
                            }
                            n = pairs + n % 2;
                        }
                        t->out.setPartial(t->dev, GlobalScalar<T>::slotOf(t->view), s[0]);
                        if (t->view == DataView::STANDARD) {
                            t->out.setPartial(t->dev, 1, t->out.identity());
                        }
                    }
                };
                const int32_t chunks = span.chunkCount();
                auto          tramp = std::make_shared<Tramp>(
                    Tramp{span, fn(loader), result, dev, view,
                          std::vector<T>(static_cast<size_t>(chunks), result.identity()),
                          std::vector<T>(static_cast<size_t>(chunks), result.identity())});
                LaunchRecord rec;
                rec.items = span.count();
                rec.work.run = &Tramp::run;
                rec.work.finalize = &Tramp::finalize;
                rec.work.ctx = tramp.get();
                rec.work.chunks = chunks;
                rec.work.owner = std::move(tramp);
                impl.records.push_back(std::move(rec));
            }
            }
        };
        c.mImpl->rebuilder(*c.mImpl);
        // Sanitized reduce trampolines: same deterministic partial slots and
        // pairwise fold (results must stay bitwise identical with sanitize
        // on), plus observation sinks and the result-scalar write record.
        if constexpr (std::is_invocable_v<LoadingLambda&, sanitize::Loader&>) {
            c.mImpl->sanBuilder = [grid, fn, result](Impl& impl) mutable {
                for (int dev = 0; dev < impl.devCount; ++dev) {
                    for (const DataView view : kAllViews) {
                        auto span = grid.span(dev, view);
                        auto meta = std::make_shared<sanitize::KernelMeta>();
                        meta->haloRadius = grid.haloRadius();
                        sanitize::Loader loader(dev, view, meta.get());
                        using SpanT = decltype(span);
                        using KernelT = decltype(fn(loader));
                        // The reduce result is written by finalize, not
                        // through a View: give it a load slot by hand.
                        const size_t resultSlot = meta->loads.size();
                        meta->loads.push_back({result.uid(), result.name(), true, false});
                        struct STramp
                        {
                            SpanT                                 sp;
                            KernelT                               kernel;
                            GlobalScalar<T>                       out;
                            int                                   dev;
                            DataView                              view;
                            std::vector<T>                        partials;
                            std::vector<T>                        scratch;
                            std::shared_ptr<sanitize::KernelMeta> meta;
                            std::vector<sanitize::Sink>           sinks;
                            size_t                                resultSlot;
                            const Impl*                           impl;
                            static void run(void* ctx, int32_t chunk, int32_t nChunks)
                            {
                                auto* t = static_cast<STramp*>(ctx);
                                auto& sink = t->sinks[static_cast<size_t>(chunk)];
                                sink.clear();
                                sanitize::ChunkScope scope(&sink);
                                T                    acc = t->out.identity();
                                t->sp.forEachChunk(chunk, nChunks,
                                                   [&](const auto& cell) { t->kernel(cell, acc); });
                                t->partials[static_cast<size_t>(chunk)] = acc;
                            }
                            static void finalize(void* ctx, int32_t, int32_t nChunks)
                            {
                                auto* t = static_cast<STramp*>(ctx);
                                auto& s = t->scratch;
                                s.assign(t->partials.begin(), t->partials.end());
                                for (int32_t n = nChunks; n > 1;) {
                                    const int32_t pairs = n / 2;
                                    for (int32_t i = 0; i < pairs; ++i) {
                                        T folded = s[static_cast<size_t>(2 * i)];
                                        t->out.fold(folded, s[static_cast<size_t>(2 * i + 1)]);
                                        s[static_cast<size_t>(i)] = folded;
                                    }
                                    if (n % 2 == 1) {
                                        s[static_cast<size_t>(pairs)] =
                                            s[static_cast<size_t>(n - 1)];
                                    }
                                    n = pairs + n % 2;
                                }
                                t->out.setPartial(t->dev, GlobalScalar<T>::slotOf(t->view), s[0]);
                                if (t->view == DataView::STANDARD) {
                                    t->out.setPartial(t->dev, 1, t->out.identity());
                                }
                                std::vector<sanitize::AccessObs> merged(t->meta->loads.size());
                                for (int32_t i = 0; i < nChunks; ++i) {
                                    const auto& obs = t->sinks[static_cast<size_t>(i)].obs();
                                    for (size_t si = 0; si < merged.size(); ++si) {
                                        merged[si].merge(obs[si]);
                                    }
                                }
                                merged[t->resultSlot].noteWrite(true, 0, 0);
                                sanitize::Session::instance().commit(
                                    t->impl->seq, t->impl->name, t->dev, t->meta->haloRadius,
                                    t->impl->accessList, *t->meta, merged);
                            }
                        };
                        const int32_t chunks = span.chunkCount();
                        auto          tramp = std::make_shared<STramp>(STramp{
                            span, fn(loader), result, dev, view,
                            std::vector<T>(static_cast<size_t>(chunks), result.identity()),
                            std::vector<T>(static_cast<size_t>(chunks), result.identity()), meta,
                            {}, resultSlot, &impl});
                        tramp->sinks.resize(static_cast<size_t>(chunks));
                        for (auto& s : tramp->sinks) {
                            s.configure(meta->loads.size(), span.range0(), span.range1());
                        }
                        LaunchRecord rec;
                        rec.items = span.count();
                        rec.work.run = &STramp::run;
                        rec.work.finalize = &STramp::finalize;
                        rec.work.ctx = tramp.get();
                        rec.work.chunks = chunks;
                        rec.work.sanitized = true;
                        rec.work.owner = std::move(tramp);
                        impl.sanRecords.push_back(std::move(rec));
                    }
                }
            };
        }
        // The combine step the Skeleton appends after the reduce kernels.
        Backend backend = grid.backend();
        c.mImpl->combine = std::make_shared<Container>(makeCombine(backend, result));
        return c;
    }

    /// Fuse two *map* loading lambdas into one kernel: per cell, `fnA`'s
    /// compute lambda runs before `fnB`'s. This implements (in user-directed
    /// form) the container fusion the paper defers to future work (§V-D:
    /// "the inability to optimize the single-GPU performance (e.g., via
    /// kernel/container fusion)"). Valid only for cell-local (map) bodies:
    /// if fnB stencil-reads data fnA writes, the fused kernel would read
    /// partially updated neighbours. The parse step runs both lambdas, so
    /// dependency analysis sees the union of their accesses; one kernel
    /// launch replaces two and the intermediate field never re-travels
    /// through memory in the cost model.
    template <typename Grid, typename LoadingLambdaA, typename LoadingLambdaB>
    static Container fusedFactory(std::string name, const Grid& grid, LoadingLambdaA fnA,
                                  LoadingLambdaB fnB)
    {
        // Generic over the loader so the fused kernel can be instrumented by
        // the access sanitizer; the constraint keeps the fused lambda only
        // as sanitizable as its least-generic input.
        auto fused = [fnA, fnB]<typename L>(L& loader) mutable
            requires std::is_invocable_v<LoadingLambdaA&, L&> &&
                     std::is_invocable_v<LoadingLambdaB&, L&>
        {
            auto kernelA = fnA(loader);
            auto kernelB = fnB(loader);
            return [kernelA, kernelB](const auto& cell) mutable {
                kernelA(cell);
                kernelB(cell);
            };
        };
        return factory(std::move(name), grid, std::move(fused));
    }

    /// Host-side scalar computation (e.g. alpha = rsold / pAp). Runs on
    /// device 0's stream; downstream kernels see the broadcast device
    /// mirrors of the written scalars.
    template <typename T>
    static Container scalarOp(std::string name, Backend backend,
                              std::vector<GlobalScalar<T>> reads,
                              std::vector<GlobalScalar<T>> writes, std::function<void()> fn)
    {
        Container c;
        c.mImpl = std::make_shared<Impl>();
        c.mImpl->name = std::move(name);
        c.mImpl->kind = Kind::ScalarOp;
        c.mImpl->devCount = backend.devCount();
        c.mImpl->geomEpoch = backend.geometryEpoch();
        c.mImpl->seq = nextSeq();
        const double dur = 2.0 * backend.config().link.latency + 1e-6;
        c.mImpl->parser = [reads, writes](AccessList& rec) {
            for (const auto& s : reads) {
                rec.push_back({s.uid(), Access::READ, Compute::MAP, 0.0, s.name(), nullptr, true});
            }
            for (const auto& s : writes) {
                rec.push_back({s.uid(), Access::WRITE, Compute::MAP, 0.0, s.name(), nullptr, true});
            }
        };
        c.mImpl->itemsFn = [](int, DataView) -> size_t { return 1; };
        c.mImpl->launcher = [fn, dur, name = c.mImpl->name](int dev, sys::Stream& stream, DataView,
                                                            const sys::KernelCostHint&) {
            if (dev != 0) {
                return;
            }
            stream.hostFn(name, dur, fn);
        };
        return c;
    }

    /// Halo-update container for one field (created by the Skeleton from a
    /// stencil-read access record; also usable manually at the Set level).
    static Container haloUpdate(std::shared_ptr<const HaloOps> halo);

    // --- queries ----------------------------------------------------------
    [[nodiscard]] const std::string& name() const;
    [[nodiscard]] Kind               kind() const;
    [[nodiscard]] int                devCount() const;
    /// Parsed access list (parses lazily on first call).
    [[nodiscard]] const AccessList& accesses() const;
    /// MAP / STENCIL / REDUCE, deduced from the access list (paper §V-A).
    [[nodiscard]] Compute pattern() const;
    /// Cost hint derived from the access list (DESIGN.md §4).
    [[nodiscard]] const sys::KernelCostHint& costHint() const;
    /// Number of work items for (device, view).
    [[nodiscard]] size_t items(int dev, DataView view) const;
    /// The companion combine container (valid for reduce containers only).
    [[nodiscard]] const Container& combineStep() const;
    [[nodiscard]] bool             isReduce() const;

    /// Enqueue this container's work for one device on `stream`. With
    /// `sanitized` set (and a sanitizable kernel, see sanitizable()) the
    /// instrumented trampoline is enqueued instead of the plain one.
    void launch(int dev, sys::Stream& stream, DataView view = DataView::STANDARD,
                bool sanitized = false) const;

    /// Convenience: launch on stream set 0 of `backend` for every device
    /// (Set-level manual execution; the Skeleton does this per task).
    void run(const StreamSet& streams, DataView view = DataView::STANDARD,
             bool sanitized = false) const;

    /// True when sanitized launches instrument this kernel: compute
    /// containers built from a generic (`auto&`) loading lambda. Halo /
    /// scalar containers and concrete `set::Loader&` lambdas run plain.
    [[nodiscard]] bool sanitizable() const;

    /// Creation ordinal identifying this container in sanitizer reports
    /// (set::sanitize::Entry::seq) — stable across runs of one process.
    [[nodiscard]] uint64_t sanitizeSeq() const;

    /// Re-derive the launch records from the (possibly re-sliced) grid the
    /// container was built from: refreshes devCount, spans and trampolines,
    /// drops sanitized records and the parsed access list so both rebuild
    /// lazily against the grid's current geometry. Required after
    /// Grid::repartition() before the container is sequenced again; a no-op
    /// for halo/scalar containers (they have no span-derived state).
    void rebuild();

    /// Backend geometry epoch this container's records were built against
    /// (see Backend::geometryEpoch); Skeleton::sequence rejects containers
    /// whose epoch lags the backend's — stale spans must never be launched.
    [[nodiscard]] uint64_t geometryEpoch() const;

   private:
    /// Process-wide container creation counter (sanitizer report keys).
    static uint64_t nextSeq();

    template <typename T>
    static Container makeCombine(Backend& backend, GlobalScalar<T> scalar)
    {
        Container c = scalarOp<T>("combine(" + scalar.name() + ")", backend, {scalar}, {scalar},
                                  [scalar]() mutable { scalar.combinePartials(); });
        return c;
    }

    /// Precomputed launch state for one (device, view): item count plus
    /// the devirtualized kernel work. Built once at factory time, so the
    /// run hot path is a table lookup + one enqueue.
    struct LaunchRecord
    {
        size_t          items = 0;
        sys::KernelWork work;
    };

    /// Records are indexed dev * 3 + viewIndex(view).
    static constexpr int viewIndex(DataView view)
    {
        return view == DataView::STANDARD ? 0 : (view == DataView::INTERNAL ? 1 : 2);
    }
    static constexpr DataView kAllViews[3] = {DataView::STANDARD, DataView::INTERNAL,
                                              DataView::BOUNDARY};

    struct Impl
    {
        std::string name;
        Kind        kind = Kind::Compute;
        int         devCount = 1;
        std::function<void(AccessList&)>                                           parser;
        std::function<size_t(int, DataView)>                                       itemsFn;
        std::function<void(int, sys::Stream&, DataView, const sys::KernelCostHint&)> launcher;
        /// Compute containers: one record per (device, view); empty for
        /// halo/scalar containers, which keep the launcher closure.
        std::vector<LaunchRecord>  records;
        std::shared_ptr<Container> combine;  ///< combine step for reductions

        /// Rebuilds `records` from the captured grid (set by the compute
        /// factories; empty for halo/scalar containers) and the backend
        /// geometry epoch the current records match (0 = never re-sliced).
        std::function<void(Impl&)> rebuilder;
        uint64_t                   geomEpoch = 0;

        /// Access sanitizer (set/sanitize.hpp): creation ordinal for stable
        /// report keys, the deferred builder of instrumented trampolines
        /// and the records it fills (same dev * 3 + view indexing). Guarded
        /// by a mutex + flag (not std::once_flag) so rebuild() can reset it.
        uint64_t                   seq = 0;
        std::function<void(Impl&)> sanBuilder;
        std::vector<LaunchRecord>  sanRecords;
        std::mutex                 sanMutex;
        bool                       sanBuilt = false;

        [[nodiscard]] const LaunchRecord& recordAt(int dev, DataView view) const
        {
            return records[static_cast<size_t>(dev * 3 + viewIndex(view))];
        }

        [[nodiscard]] const LaunchRecord& sanRecordAt(int dev, DataView view) const
        {
            return sanRecords[static_cast<size_t>(dev * 3 + viewIndex(view))];
        }

        /// Build the sanitized trampolines once (thread-safe; no-op for
        /// non-sanitizable containers).
        void ensureSanitized();

        // lazily parsed
        bool                parsed = false;
        AccessList          accessList;
        Compute             patternValue = Compute::MAP;
        Compute             forcedPattern = Compute::MAP;
        bool                hasForcedPattern = false;
        sys::KernelCostHint hint;

        void ensureParsed();
    };
    std::shared_ptr<Impl> mImpl;
};

}  // namespace neon::set
