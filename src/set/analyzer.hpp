#pragma once
// Analyzer: the race-analysis entry point for a Backend (docs/analysis.md),
// mirroring the Profiler facade:
//
//   auto an = backend.analysis();
//   an.enable();                  // start recording the schedule log
//   app.run(); app.sync();
//   auto report = an.raceReport();  // happens-before race check
//
// Analyzer is a cheap value handle onto the backend's engine-owned
// ScheduleLog; copies observe the same recording. The check is engine-
// independent: the log captures host enqueue order, so sequential and
// threaded engines produce the same verdict for the same schedule.

#include "analysis/report.hpp"
#include "set/backend.hpp"
#include "sys/schedule_log.hpp"

namespace neon::set {

class Analyzer
{
   public:
    explicit Analyzer(Backend backend) : mBackend(std::move(backend)) {}

    /// Start/stop recording schedule records (off by default; recording
    /// costs one small entry per enqueued op).
    void enable(bool on = true) { log().enable(on); }
    [[nodiscard]] bool enabled() const { return log().enabled(); }
    /// Drop all recorded ops, run metadata and detector state.
    void clear() { log().clear(); }

    /// The underlying engine-owned schedule log.
    [[nodiscard]] sys::ScheduleLog& log() const { return mBackend.engine().scheduleLog(); }

    /// Happens-before race report over every op recorded so far.
    [[nodiscard]] analysis::AnalysisReport raceReport() const;
    /// Incremental drain: report only findings from ops appended since the
    /// previous drain (detector state persists inside the log).
    [[nodiscard]] analysis::AnalysisReport drainRaces() const;

   private:
    Backend mBackend;
};

}  // namespace neon::set

namespace neon {
using set::Analyzer;
}
