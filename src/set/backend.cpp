#include "set/backend.hpp"

#include <atomic>
#include <mutex>

#include "core/error.hpp"
#include "sys/device.hpp"
#include "sys/sequential_engine.hpp"
#include "sys/threaded_engine.hpp"

namespace neon::set {

struct Backend::Impl
{
    EngineKind                                 engineKind = EngineKind::Sequential;
    sys::SimConfig                             config;
    std::unique_ptr<sys::Engine>               engine;
    std::vector<std::unique_ptr<sys::Device>>  devices;
    // streams[dev][idx], lazily grown
    mutable std::mutex                                      streamMutex;
    mutable std::vector<std::vector<std::unique_ptr<sys::Stream>>> streams;

    ~Impl()
    {
        // Streams must die before the engine (they detach in their dtor).
        streams.clear();
        engine.reset();
        devices.clear();
    }
};

Backend::Backend() : Backend(1, sys::DeviceType::CPU, sys::SimConfig::zeroCost()) {}

Backend::Backend(int nDevices, sys::DeviceType type, sys::SimConfig config, EngineKind engineKind)
    : mImpl(std::make_shared<Impl>())
{
    NEON_CHECK(nDevices >= 1, "backend needs at least one device");
    mImpl->engineKind = engineKind;
    mImpl->config = config;
    if (engineKind == EngineKind::Sequential) {
        mImpl->engine = std::make_unique<sys::SequentialEngine>();
    } else {
        mImpl->engine = std::make_unique<sys::ThreadedEngine>();
    }
    for (int i = 0; i < nDevices; ++i) {
        mImpl->devices.push_back(std::make_unique<sys::Device>(i, type, config));
    }
    mImpl->streams.resize(static_cast<size_t>(nDevices));
}

Backend Backend::simGpu(int nDevices, sys::SimConfig config, EngineKind engine)
{
    return Backend(nDevices, sys::DeviceType::SIM_GPU, config, engine);
}

Backend Backend::cpu(int nDevices, EngineKind engine)
{
    return Backend(nDevices, sys::DeviceType::CPU, sys::SimConfig::zeroCost(), engine);
}

int Backend::devCount() const
{
    return static_cast<int>(mImpl->devices.size());
}

sys::Device& Backend::device(int idx) const
{
    NEON_CHECK(idx >= 0 && idx < devCount(), "device index out of range");
    return *mImpl->devices[static_cast<size_t>(idx)];
}

sys::Engine& Backend::engine() const
{
    return *mImpl->engine;
}

const sys::SimConfig& Backend::config() const
{
    return mImpl->config;
}

bool Backend::isDryRun() const
{
    return mImpl->config.dryRun;
}

Backend::EngineKind Backend::engineKind() const
{
    return mImpl->engineKind;
}

sys::Stream& Backend::stream(int dev, int streamIdx) const
{
    NEON_CHECK(dev >= 0 && dev < devCount(), "device index out of range");
    NEON_CHECK(streamIdx >= 0, "stream index must be non-negative");
    std::lock_guard<std::mutex> lock(mImpl->streamMutex);
    auto& perDev = mImpl->streams[static_cast<size_t>(dev)];
    while (static_cast<int>(perDev.size()) <= streamIdx) {
        perDev.push_back(std::make_unique<sys::Stream>(
            *mImpl->engine, device(dev), static_cast<int>(perDev.size())));
    }
    return *perDev[static_cast<size_t>(streamIdx)];
}

void Backend::sync() const
{
    mImpl->engine->syncAll();
}

double Backend::maxVtime() const
{
    return mImpl->engine->maxVtime();
}

void Backend::resetClocks() const
{
    mImpl->engine->resetClocks();
}

sys::Trace& Backend::trace() const
{
    return mImpl->engine->trace();
}

uint64_t Backend::newDataUid()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1);
}

std::string Backend::toString() const
{
    std::string kind = device(0).type() == sys::DeviceType::CPU ? "CPU" : "SIM_GPU";
    return kind + " x" + std::to_string(devCount()) +
           (engineKind() == EngineKind::Sequential ? " (sequential engine)" : " (threaded engine)");
}

}  // namespace neon::set
