#include "set/backend.hpp"

#include <atomic>
#include <cstdlib>
#include <mutex>
#include <sstream>
#include <thread>

#include "core/error.hpp"
#include "set/analyzer.hpp"
#include "set/profiler.hpp"
#include "sys/device.hpp"
#include "sys/sequential_engine.hpp"
#include "sys/thread_pool.hpp"
#include "sys/threaded_engine.hpp"

namespace neon::set {

namespace {

bool sameCost(const sys::SimConfig& a, const sys::SimConfig& b)
{
    return a.device.memBandwidth == b.device.memBandwidth &&
           a.device.flopRate == b.device.flopRate &&
           a.device.kernelLaunchOverhead == b.device.kernelLaunchOverhead &&
           a.link.bandwidth == b.link.bandwidth && a.link.latency == b.link.latency &&
           a.deviceMemCapacity == b.deviceMemCapacity;
}

std::string presetNameFor(const sys::SimConfig& cfg)
{
    if (sameCost(cfg, sys::SimConfig::zeroCost())) {
        return "zeroCost";
    }
    if (sameCost(cfg, sys::SimConfig::dgxA100Like())) {
        return "dgxA100";
    }
    if (sameCost(cfg, sys::SimConfig::pcieGen3Like())) {
        return "pcieGen3";
    }
    return "custom";
}

sys::SimConfig presetConfig(const std::string& name)
{
    if (name == "zeroCost") {
        return sys::SimConfig::zeroCost();
    }
    if (name == "dgxA100") {
        return sys::SimConfig::dgxA100Like();
    }
    if (name == "pcieGen3") {
        return sys::SimConfig::pcieGen3Like();
    }
    throw NeonException("unknown backend preset '" + name +
                        "' (expected zeroCost | dgxA100 | pcieGen3)");
}

std::string deviceTypeName(sys::DeviceType t)
{
    return t == sys::DeviceType::CPU ? "CPU" : "SIM_GPU";
}

}  // namespace

std::string to_string(EngineKind k)
{
    return k == EngineKind::Sequential ? "sequential" : "threaded";
}

std::string BackendSpec::toString() const
{
    std::ostringstream os;
    os << deviceTypeName(deviceType) << " x" << nDevices << " engine=" << set::to_string(engine)
       << " preset=" << preset;
    if (hostThreads != 0) {
        os << " threads=" << hostThreads;
    }
    if (!speedFactors.empty()) {
        os << " speed=";
        for (size_t i = 0; i < speedFactors.size(); ++i) {
            os << (i == 0 ? "" : ",") << speedFactors[i];
        }
    }
    if (config.dryRun) {
        os << " dryRun";
    }
    return os.str();
}

BackendSpec BackendSpec::fromString(const std::string& text)
{
    BackendSpec        spec;
    std::istringstream is(text);
    std::string        type;
    std::string        count;
    is >> type >> count;
    NEON_CHECK(type == "CPU" || type == "SIM_GPU",
               "BackendSpec::fromString: bad device type in '" + text + "'");
    NEON_CHECK(count.size() > 1 && count[0] == 'x',
               "BackendSpec::fromString: bad device count in '" + text + "'");
    spec.deviceType = type == "CPU" ? sys::DeviceType::CPU : sys::DeviceType::SIM_GPU;
    spec.nDevices = std::stoi(count.substr(1));

    spec.preset = spec.deviceType == sys::DeviceType::CPU ? "zeroCost" : "dgxA100";
    std::string token;
    bool        dryRun = false;
    while (is >> token) {
        if (token.rfind("engine=", 0) == 0) {
            const std::string e = token.substr(7);
            NEON_CHECK(e == "sequential" || e == "threaded",
                       "BackendSpec::fromString: bad engine in '" + text + "'");
            spec.engine = e == "sequential" ? EngineKind::Sequential : EngineKind::Threaded;
        } else if (token.rfind("preset=", 0) == 0) {
            spec.preset = token.substr(7);
        } else if (token.rfind("threads=", 0) == 0) {
            spec.hostThreads = std::stoi(token.substr(8));
            NEON_CHECK(spec.hostThreads >= 1,
                       "BackendSpec::fromString: threads= must be >= 1 in '" + text + "'");
        } else if (token.rfind("speed=", 0) == 0) {
            std::istringstream fs(token.substr(6));
            std::string        part;
            while (std::getline(fs, part, ',')) {
                const double f = std::stod(part);
                NEON_CHECK(f > 0.0, "BackendSpec::fromString: speed factors must be > 0 in '" +
                                        text + "'");
                spec.speedFactors.push_back(f);
            }
            NEON_CHECK(!spec.speedFactors.empty(),
                       "BackendSpec::fromString: empty speed= list in '" + text + "'");
        } else if (token == "dryRun") {
            dryRun = true;
        } else {
            throw NeonException("BackendSpec::fromString: unexpected token '" + token + "'");
        }
    }
    spec.config = presetConfig(spec.preset);
    spec.config.dryRun = dryRun;
    return spec;
}

BackendSpec BackendSpec::simGpu(int nDevices, sys::SimConfig config, EngineKind engine)
{
    BackendSpec spec;
    spec.nDevices = nDevices;
    spec.deviceType = sys::DeviceType::SIM_GPU;
    spec.engine = engine;
    spec.config = config;
    spec.preset = presetNameFor(config);
    return spec;
}

BackendSpec BackendSpec::cpu(int nDevices, EngineKind engine)
{
    BackendSpec spec;
    spec.nDevices = nDevices;
    spec.deviceType = sys::DeviceType::CPU;
    spec.engine = engine;
    spec.config = sys::SimConfig::zeroCost();
    spec.preset = "zeroCost";
    return spec;
}

struct Backend::Impl
{
    BackendSpec                                spec;
    int                                        hostThreads = 1;  ///< resolved pool width
    std::shared_ptr<sys::ThreadPool>           pool;
    std::unique_ptr<sys::Engine>               engine;
    std::vector<std::unique_ptr<sys::Device>>  devices;
    // streams[dev][idx], lazily grown
    mutable std::mutex                                      streamMutex;
    mutable std::vector<std::vector<std::unique_ptr<sys::Stream>>> streams;
    // Per-uid inter-run event chains (see sys/data_barriers.hpp).
    mutable sys::DataBarriers dataBarriers;
    // Stream-index leases: sorted disjoint [base, base+count) blocks.
    mutable std::mutex                       leaseMutex;
    mutable std::vector<std::pair<int, int>> leases;
    // Partition-geometry epoch (see Backend::geometryEpoch).
    mutable std::atomic<uint64_t> geometryEpoch{0};

    ~Impl()
    {
        // Streams must die before the engine (they detach in their dtor).
        streams.clear();
        engine.reset();
        devices.clear();
    }
};

Backend::Backend() : Backend(1, sys::DeviceType::CPU, sys::SimConfig::zeroCost()) {}

Backend::Backend(int nDevices, sys::DeviceType type, sys::SimConfig config, EngineKind engineKind)
{
    BackendSpec spec;
    spec.nDevices = nDevices;
    spec.deviceType = type;
    spec.engine = engineKind;
    spec.config = config;
    spec.preset = presetNameFor(config);
    *this = make(std::move(spec));
}

Backend Backend::make(BackendSpec spec)
{
    NEON_CHECK(spec.nDevices >= 1, "backend needs at least one device");
    // NEON_ENGINE overrides the engine choice process-wide so tools like
    // tools/neon-lint can run every example under both engines unmodified.
    if (const char* env = std::getenv("NEON_ENGINE"); env != nullptr && *env != '\0') {
        const std::string e(env);
        NEON_CHECK(e == "sequential" || e == "threaded",
                   "NEON_ENGINE must be 'sequential' or 'threaded', got '" + e + "'");
        spec.engine = e == "sequential" ? EngineKind::Sequential : EngineKind::Threaded;
    }
    // NEON_THREADS overrides the host-pool width process-wide (same
    // convention as NEON_ENGINE); then spec.hostThreads; then auto. Safe to
    // vary freely: the chunk partition is span-derived, so results are
    // bitwise identical for any width.
    int threads = spec.hostThreads;
    if (const char* env = std::getenv("NEON_THREADS"); env != nullptr && *env != '\0') {
        threads = std::atoi(env);
        NEON_CHECK(threads >= 1, "NEON_THREADS must be a positive integer, got '" +
                                     std::string(env) + "'");
    }
    if (threads <= 0) {
        threads = static_cast<int>(std::thread::hardware_concurrency());
    }
    if (threads < 1) {
        threads = 1;
    }
    auto  implPtr = std::make_shared<Impl>();
    Impl& impl = *implPtr;
    impl.spec = std::move(spec);
    impl.hostThreads = threads;
    impl.pool = std::make_shared<sys::ThreadPool>(threads);
    if (impl.spec.engine == EngineKind::Sequential) {
        impl.engine = std::make_unique<sys::SequentialEngine>();
    } else {
        impl.engine = std::make_unique<sys::ThreadedEngine>();
    }
    impl.engine->setHostPool(impl.pool);
    NEON_CHECK(impl.spec.speedFactors.empty() ||
                   static_cast<int>(impl.spec.speedFactors.size()) == impl.spec.nDevices,
               "BackendSpec: speedFactors must be empty or have one entry per device");
    for (int i = 0; i < impl.spec.nDevices; ++i) {
        // Heterogeneous mixes scale each device's compute-side cost model;
        // both engines charge kernels via dev.config(), so the scaled rates
        // flow straight into the virtual timeline and the ExecutionReport.
        sys::SimConfig devConfig = impl.spec.config;
        if (!impl.spec.speedFactors.empty()) {
            const double f = impl.spec.speedFactors[static_cast<size_t>(i)];
            NEON_CHECK(f > 0.0, "BackendSpec: speed factors must be > 0");
            devConfig.device.memBandwidth *= f;
            devConfig.device.flopRate *= f;
        }
        impl.devices.push_back(
            std::make_unique<sys::Device>(i, impl.spec.deviceType, devConfig));
    }
    impl.streams.resize(static_cast<size_t>(impl.spec.nDevices));
    if (!impl.spec.faults.empty()) {
        impl.engine->faults().setPlan(impl.spec.faults);
    }
    return Backend(std::move(implPtr));
}

Backend Backend::simGpu(int nDevices, sys::SimConfig config, EngineKind engine)
{
    return make(BackendSpec::simGpu(nDevices, config, engine));
}

Backend Backend::cpu(int nDevices, EngineKind engine)
{
    return make(BackendSpec::cpu(nDevices, engine));
}

int Backend::devCount() const
{
    return static_cast<int>(mImpl->devices.size());
}

sys::Device& Backend::device(int idx) const
{
    NEON_CHECK(idx >= 0 && idx < devCount(), "device index out of range");
    return *mImpl->devices[static_cast<size_t>(idx)];
}

sys::Engine& Backend::engine() const
{
    return *mImpl->engine;
}

const sys::SimConfig& Backend::config() const
{
    return mImpl->spec.config;
}

const BackendSpec& Backend::spec() const
{
    return mImpl->spec;
}

bool Backend::isDryRun() const
{
    return mImpl->spec.config.dryRun;
}

Backend::EngineKind Backend::engineKind() const
{
    return mImpl->spec.engine;
}

int Backend::hostThreads() const
{
    return mImpl->hostThreads;
}

sys::Stream& Backend::stream(int dev, int streamIdx) const
{
    NEON_CHECK(dev >= 0 && dev < devCount(), "device index out of range");
    NEON_CHECK(streamIdx >= 0, "stream index must be non-negative");
    std::lock_guard<std::mutex> lock(mImpl->streamMutex);
    auto& perDev = mImpl->streams[static_cast<size_t>(dev)];
    while (static_cast<int>(perDev.size()) <= streamIdx) {
        perDev.push_back(std::make_unique<sys::Stream>(
            *mImpl->engine, device(dev), static_cast<int>(perDev.size())));
    }
    return *perDev[static_cast<size_t>(streamIdx)];
}

void Backend::sync() const
{
    mImpl->engine->syncAll();
    // All work is drained: a good moment for the NEON_ANALYSIS race-detector
    // drain (analysis/env.cpp installs the callback).
    if (mImpl->engine->scheduleLog().enabled()) {
        mImpl->engine->scheduleLog().runSyncCallback();
    }
}

sys::FaultInjector& Backend::faults() const
{
    return mImpl->engine->faults();
}

sys::DataBarriers& Backend::dataBarriers() const
{
    return mImpl->dataBarriers;
}

int Backend::leaseStreams(int count) const
{
    NEON_CHECK(count >= 1, "Backend::leaseStreams: count must be >= 1");
    std::lock_guard<std::mutex> lock(mImpl->leaseMutex);
    auto& leases = mImpl->leases;
    int   base = 0;
    for (size_t i = 0;; ++i) {
        const bool atEnd = i >= leases.size();
        const int  nextBase = atEnd ? base + count : leases[i].first;
        if (nextBase - base >= count) {
            leases.insert(leases.begin() + static_cast<std::ptrdiff_t>(i), {base, count});
            return base;
        }
        base = leases[i].first + leases[i].second;
    }
}

void Backend::releaseStreams(int base, int count) const
{
    std::lock_guard<std::mutex> lock(mImpl->leaseMutex);
    auto& leases = mImpl->leases;
    for (size_t i = 0; i < leases.size(); ++i) {
        if (leases[i].first == base && leases[i].second == count) {
            leases.erase(leases.begin() + static_cast<std::ptrdiff_t>(i));
            return;
        }
    }
    throw NeonException("Backend::releaseStreams: no lease [" + std::to_string(base) + ", " +
                        std::to_string(base + count) + ") is outstanding");
}

double Backend::makespanNow() const
{
    return mImpl->engine->maxVtime();
}

uint64_t Backend::geometryEpoch() const
{
    return mImpl->geometryEpoch.load(std::memory_order_acquire);
}

void Backend::noteGeometryChange() const
{
    mImpl->geometryEpoch.fetch_add(1, std::memory_order_acq_rel);
}

void Backend::resetClocks() const
{
    mImpl->engine->resetClocks();
    // Chained tail events carry vtime stamps from the old timeline; waiting
    // on them after a reset would fast-forward the fresh clocks.
    mImpl->dataBarriers.clear();
}

sys::Trace& Backend::traceRef() const
{
    return mImpl->engine->trace();
}

Profiler Backend::profiler() const
{
    return Profiler(*this);
}

Analyzer Backend::analysis() const
{
    return Analyzer(*this);
}

uint64_t Backend::newDataUid()
{
    static std::atomic<uint64_t> counter{1};
    return counter.fetch_add(1);
}

std::string Backend::toString() const
{
    return mImpl->spec.toString();
}

}  // namespace neon::set
