#pragma once
// Loader: the object passed to a Container's loading lambda (paper §IV-B2).
// In *parsing* mode it records which Multi-GPU data the container uses and
// how; in *execution* mode it hands out the partition local view for one
// device and data view. The Loader hides the SPMD nature of the Container,
// acting like the rank mechanism in MPI.

#include <type_traits>

#include "domain/concepts.hpp"
#include "set/access.hpp"

namespace neon::set {

class Loader
{
   public:
    static Loader parsing(AccessList* record)
    {
        Loader l;
        l.mRecord = record;
        return l;
    }

    static Loader execution(int devIdx, DataView view)
    {
        Loader l;
        l.mDevIdx = devIdx;
        l.mView = view;
        return l;
    }

    /// Extract the partition local view of `data` for this loader's device,
    /// declaring the access mode and compute pattern. `DataT` must provide
    /// uid(), name(), bytesPerItem(), haloOps() and getPartition(dev, view).
    template <typename DataT>
    auto load(DataT& data, Access access, Compute compute = Compute::MAP)
    {
        static_assert(neon::domain::Loadable<std::remove_cvref_t<DataT>>,
                      "Loader::load requires a type satisfying neon::domain::Loadable "
                      "(see docs/domain.md)");
        if (isParsing()) {
            DataAccess rec;
            rec.uid = data.uid();
            rec.access = access;
            rec.compute = compute;
            rec.bytesPerItem = data.bytesPerItem(compute);
            rec.name = data.name();
            if (compute == Compute::STENCIL && access == Access::READ) {
                rec.halo = data.haloOps();
            }
            if constexpr (requires { std::remove_cvref_t<DataT>::kIsGlobalScalar; }) {
                rec.scalar = true;
            }
            mRecord->push_back(std::move(rec));
        }
        return data.getPartition(mDevIdx, mView);
    }

    /// Extract a partition WITHOUT declaring the access. The skeleton then
    /// derives no edges or halo updates for it — this is only for data that
    /// is provably private to the container (and is exactly the bug class
    /// the access sanitizer reports as UndeclaredRead/UndeclaredWrite, so
    /// any misuse shows up under NEON_SANITIZE=1).
    template <typename DataT>
    auto loadUnchecked(DataT& data)
    {
        static_assert(neon::domain::Loadable<std::remove_cvref_t<DataT>>,
                      "Loader::loadUnchecked requires a type satisfying "
                      "neon::domain::Loadable (see docs/domain.md)");
        return data.getPartition(mDevIdx, mView);
    }

    [[nodiscard]] bool     isParsing() const { return mRecord != nullptr; }
    [[nodiscard]] int      devIdx() const { return mDevIdx; }
    [[nodiscard]] DataView view() const { return mView; }

   private:
    Loader() = default;

    AccessList* mRecord = nullptr;
    int         mDevIdx = 0;
    DataView    mView = DataView::STANDARD;
};

}  // namespace neon::set
