#include "set/container.hpp"

#include <atomic>

namespace neon::set {

uint64_t Container::nextSeq()
{
    static std::atomic<uint64_t> counter{0};
    return counter.fetch_add(1, std::memory_order_relaxed) + 1;
}

void Container::Impl::ensureParsed()
{
    if (parsed) {
        return;
    }
    if (parser) {
        parser(accessList);
    }
    // Deduce the compute pattern (paper §V-A: nodes are flagged MapOp /
    // StencilOp / ReduceOp from the loading process).
    if (hasForcedPattern) {
        patternValue = forcedPattern;
    } else {
        patternValue = Compute::MAP;
        for (const auto& a : accessList) {
            if (a.compute == Compute::STENCIL && a.access == Access::READ) {
                patternValue = Compute::STENCIL;
                break;
            }
        }
    }
    // Cost hint: bytes moved per cell = sum over accessed fields. Stencil
    // neighbour re-reads are assumed cached (memory-bound roofline).
    hint = sys::KernelCostHint{};
    for (const auto& a : accessList) {
        hint.bytesPerItem += a.bytesPerItem;
    }
    // Grid kernels do O(1) flops per byte; the roofline max() in the cost
    // model keeps them memory-bound.
    hint.flopsPerItem = hint.bytesPerItem / 2.0;
    parsed = true;
}

Container Container::haloUpdate(std::shared_ptr<const HaloOps> halo)
{
    NEON_CHECK(halo != nullptr, "haloUpdate requires a halo-capable field");
    Container c;
    c.mImpl = std::make_shared<Impl>();
    c.mImpl->name = "halo(" + halo->name() + ")";
    c.mImpl->kind = Kind::Halo;
    c.mImpl->devCount = halo->devCount();
    c.mImpl->seq = nextSeq();
    c.mImpl->parser = [halo](AccessList& rec) {
        // A halo update is modeled as a write of the field: the stencil
        // reading it afterwards gets a RaW edge, previous readers a WaR.
        rec.push_back({halo->uid(), Access::WRITE, Compute::MAP, 0.0, halo->name(), halo});
    };
    c.mImpl->itemsFn = [](int, DataView) -> size_t { return 0; };
    c.mImpl->launcher = [halo](int dev, sys::Stream& stream, DataView,
                               const sys::KernelCostHint&) {
        halo->enqueueHaloSend(dev, stream);
    };
    return c;
}

const std::string& Container::name() const
{
    return mImpl->name;
}

Container::Kind Container::kind() const
{
    return mImpl->kind;
}

int Container::devCount() const
{
    return mImpl->devCount;
}

const AccessList& Container::accesses() const
{
    mImpl->ensureParsed();
    return mImpl->accessList;
}

Compute Container::pattern() const
{
    mImpl->ensureParsed();
    return mImpl->patternValue;
}

const sys::KernelCostHint& Container::costHint() const
{
    mImpl->ensureParsed();
    return mImpl->hint;
}

size_t Container::items(int dev, DataView view) const
{
    if (!mImpl->records.empty()) {
        return mImpl->recordAt(dev, view).items;
    }
    return mImpl->itemsFn ? mImpl->itemsFn(dev, view) : 0;
}

const Container& Container::combineStep() const
{
    NEON_CHECK(mImpl->combine != nullptr, "not a reduce container");
    return *mImpl->combine;
}

bool Container::isReduce() const
{
    return mImpl->combine != nullptr;
}

void Container::Impl::ensureSanitized()
{
    std::lock_guard<std::mutex> lock(sanMutex);
    if (sanBuilt) {
        return;
    }
    ensureParsed();
    if (sanBuilder) {
        sanBuilder(*this);
    }
    sanBuilt = true;
}

void Container::rebuild()
{
    Impl& impl = *mImpl;
    if (impl.rebuilder) {
        impl.rebuilder(impl);
    }
    {
        std::lock_guard<std::mutex> lock(impl.sanMutex);
        impl.sanRecords.clear();
        impl.sanBuilt = false;
    }
    // Parse-time state snapshots the field's halo plan and per-item byte
    // counts; both may have changed with the geometry, so re-parse lazily.
    impl.parsed = false;
    impl.accessList.clear();
    if (impl.combine) {
        impl.combine->mImpl->devCount = impl.devCount;
        impl.combine->mImpl->geomEpoch = impl.geomEpoch;
    }
}

uint64_t Container::geometryEpoch() const
{
    return mImpl->geomEpoch;
}

bool Container::sanitizable() const
{
    return mImpl->sanBuilder != nullptr;
}

uint64_t Container::sanitizeSeq() const
{
    return mImpl->seq;
}

void Container::launch(int dev, sys::Stream& stream, DataView view, bool sanitized) const
{
    mImpl->ensureParsed();
    if (!mImpl->records.empty()) {
        // Kernels that cannot be instrumented (concrete-Loader lambdas)
        // fall back to the plain trampoline: the sanitizer then simply has
        // no observations for them.
        const bool useSan = sanitized && mImpl->sanBuilder != nullptr;
        if (useSan) {
            mImpl->ensureSanitized();
        }
        const LaunchRecord& rec = useSan ? mImpl->sanRecordAt(dev, view)
                                         : mImpl->recordAt(dev, view);
        // Empty map views (e.g. BOUNDARY on one device) skip entirely;
        // reductions always launch so their partial slots are reset every
        // iteration (stale partials would leak across runs).
        if (rec.items == 0 && mImpl->combine == nullptr) {
            return;
        }
        sys::KernelOp op;
        op.name = mImpl->name;
        op.items = rec.items;
        op.hint = mImpl->hint;
        op.work = rec.work;
        stream.enqueue(std::move(op));
        return;
    }
    mImpl->launcher(dev, stream, view, mImpl->hint);
}

void Container::run(const StreamSet& streams, DataView view, bool sanitized) const
{
    for (int d = 0; d < devCount(); ++d) {
        launch(d, streams[d], view, sanitized);
    }
    if (isReduce()) {
        // Manual execution path: synchronize and combine on stream 0.
        streams.sync();
        combineStep().launch(0, streams[0], DataView::STANDARD);
    }
}

}  // namespace neon::set
