#pragma once
// Profiler: the one observability entry point for a Backend
// (docs/observability.md). Everything that used to be scattered across
// backend.trace(), backend.maxVtime() and free-form report strings hangs
// off backend.profiler():
//
//   auto prof = backend.profiler();
//   prof.enable();                     // start recording trace events
//   app.run(); app.sync();
//   std::cout << prof.gantt();         // text Gantt of the virtual timeline
//   prof.writeChromeTrace("run.json"); // open in chrome://tracing / Perfetto
//   auto report = prof.report();       // neon::ExecutionReport aggregation
//
// Profiler is a cheap value handle onto the backend's engine-owned trace;
// copies observe the same recording.

#include <string>

#include "set/backend.hpp"
#include "sys/execution_report.hpp"
#include "sys/trace.hpp"

namespace neon::set {

class Profiler
{
   public:
    explicit Profiler(Backend backend) : mBackend(std::move(backend)) {}

    /// Start/stop recording trace events (off by default; recording costs
    /// one entry per kernel/transfer/hostFn/wait).
    void enable(bool on = true) { trace().enable(on); }
    [[nodiscard]] bool enabled() const { return trace().enabled(); }
    /// Drop all recorded entries.
    void clear() { trace().clear(); }

    /// The underlying structured event log.
    [[nodiscard]] sys::Trace& trace() const { return mBackend.traceRef(); }

    /// Virtual makespan so far (max stream vtime; replaces Backend::maxVtime).
    [[nodiscard]] double makespan() const { return mBackend.makespanNow(); }
    /// Zero all virtual clocks (between measured benchmark runs).
    void resetClocks() { mBackend.resetClocks(); }

    /// Text Gantt chart of the recorded virtual timeline.
    [[nodiscard]] std::string gantt(int columns = 100) const { return trace().gantt(columns); }
    /// Chrome trace-event JSON (chrome://tracing, https://ui.perfetto.dev).
    [[nodiscard]] std::string chromeTrace() const { return trace().chromeTrace(); }
    /// Write chromeTrace() to `path`; throws NeonException on I/O failure.
    void writeChromeTrace(const std::string& path) const;

    /// Aggregate every recorded entry into an ExecutionReport.
    [[nodiscard]] ExecutionReport report() const;
    /// Aggregate only the entries of run windows [firstRunId, lastRunId]
    /// (Skeleton::run() stamps each window; see Skeleton::executionReport).
    [[nodiscard]] ExecutionReport report(int firstRunId, int lastRunId) const;

    /// Injected fault events recorded so far (kind=="fault" trace rows:
    /// transfer retries and stream stalls; docs/robustness.md).
    [[nodiscard]] int faultEvents() const
    {
        return static_cast<int>(trace().countKind(sys::TraceKind::Fault));
    }

   private:
    Backend mBackend;
};

}  // namespace neon::set

namespace neon {
using set::Profiler;
}
