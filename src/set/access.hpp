#pragma once
// Access records produced by the Loader during container parsing
// (paper §IV-B3: the Loader stores information about all the Multi-GPU data
// used in a Container, from which the dependency graph is built).

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "core/types.hpp"

namespace neon::sys {
class Stream;
}

namespace neon::set {

/// Interface a Field implements so the Skeleton can materialize halo-update
/// graph nodes for it (paper §IV-C2 "haloUpdate asynchronous mechanism").
class HaloOps
{
   public:
    virtual ~HaloOps() = default;

    /// Enqueue on `stream` (bound to device `dev`) the transfers that send
    /// this device's boundary data into its neighbours' halo buffers.
    virtual void enqueueHaloSend(int dev, sys::Stream& stream) const = 0;

    [[nodiscard]] virtual uint64_t    uid() const = 0;
    [[nodiscard]] virtual std::string name() const = 0;
    [[nodiscard]] virtual int         devCount() const = 0;

    /// Devices that receive data when device `dev` runs its halo send —
    /// the write set of the halo-update op on `dev` (neon::analysis).
    /// Default: the 1-D partition neighbours; implementations with an
    /// explicit segment list narrow it to the segments actually present.
    [[nodiscard]] virtual std::vector<int> peers(int dev) const
    {
        std::vector<int> out;
        if (dev > 0) {
            out.push_back(dev - 1);
        }
        if (dev + 1 < devCount()) {
            out.push_back(dev + 1);
        }
        return out;
    }
};

/// One recorded use of a Multi-GPU data object inside a Container.
struct DataAccess
{
    uint64_t    uid = 0;
    Access      access = Access::READ;
    Compute     compute = Compute::MAP;
    double      bytesPerItem = 0.0;  ///< contribution to the kernel cost model
    std::string name;
    /// Non-null iff this is a stencil read of a halo-carrying field.
    std::shared_ptr<const HaloOps> halo;
    /// True for GlobalScalar accesses: the data is a device-mirrored scalar
    /// with per-device reduction partials, not a partitioned field
    /// (neon::analysis segments them differently).
    bool scalar = false;
};

using AccessList = std::vector<DataAccess>;

}  // namespace neon::set
