#pragma once
// Backend: the Set-level handle to the execution resources (paper §IV-B).
// A Backend owns N devices, the execution engine and a pool of streams
// indexed (device, streamIdx). It is a cheap copyable handle; grids, fields
// and skeletons keep a copy.

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sys/cost_model.hpp"
#include "sys/stream.hpp"

namespace neon::set {

class Backend
{
   public:
    enum class EngineKind : uint8_t
    {
        Sequential,  ///< deterministic discrete-event engine (default)
        Threaded,    ///< real worker threads, used to validate synchronization
    };

    /// Default: one zero-cost CPU device, sequential engine.
    Backend();
    Backend(int nDevices, sys::DeviceType type, sys::SimConfig config,
            EngineKind engine = EngineKind::Sequential);

    /// n simulated GPUs with a DGX-A100-like cost model.
    static Backend simGpu(int nDevices,
                          sys::SimConfig config = sys::SimConfig::dgxA100Like(),
                          EngineKind     engine = EngineKind::Sequential);
    /// n zero-cost CPU devices (multi-device halo logic testable on CPU).
    static Backend cpu(int nDevices = 1, EngineKind engine = EngineKind::Sequential);

    [[nodiscard]] int          devCount() const;
    [[nodiscard]] sys::Device& device(int idx) const;
    [[nodiscard]] sys::Engine& engine() const;
    [[nodiscard]] const sys::SimConfig& config() const;
    [[nodiscard]] bool         isDryRun() const;
    [[nodiscard]] EngineKind   engineKind() const;

    /// Stream `streamIdx` on device `dev`; created lazily.
    [[nodiscard]] sys::Stream& stream(int dev, int streamIdx = 0) const;

    /// Block the host until every stream on every device drained.
    void sync() const;

    /// Virtual makespan so far (max stream vtime).
    [[nodiscard]] double maxVtime() const;
    /// Zero all virtual clocks (between measured benchmark runs).
    void resetClocks() const;

    [[nodiscard]] sys::Trace& trace() const;

    /// Fresh unique id for a Multi-GPU data object (dependency tracking).
    static uint64_t newDataUid();

    [[nodiscard]] std::string toString() const;

   private:
    struct Impl;
    std::shared_ptr<Impl> mImpl;
};

/// A column of the backend's stream matrix: stream `setIdx` on every device.
/// This is the paper's "multi-GPU Stream" (§IV-B4).
class StreamSet
{
   public:
    StreamSet() = default;
    StreamSet(Backend backend, int setIdx) : mBackend(std::move(backend)), mSetIdx(setIdx) {}

    [[nodiscard]] sys::Stream& operator[](int dev) const { return mBackend.stream(dev, mSetIdx); }
    [[nodiscard]] int          devCount() const { return mBackend.devCount(); }
    [[nodiscard]] int          setIdx() const { return mSetIdx; }

    void sync() const
    {
        for (int d = 0; d < devCount(); ++d) {
            (*this)[d].sync();
        }
    }

   private:
    Backend mBackend;
    int     mSetIdx = 0;
};

/// One event per device: the paper's "multi-GPU Event" (§IV-B4).
class EventSet
{
   public:
    EventSet() = default;
    static EventSet make(int nDevices)
    {
        EventSet es;
        es.mEvents.reserve(static_cast<size_t>(nDevices));
        for (int i = 0; i < nDevices; ++i) {
            es.mEvents.push_back(std::make_shared<sys::Event>());
        }
        return es;
    }

    [[nodiscard]] const sys::EventPtr& operator[](int dev) const
    {
        return mEvents[static_cast<size_t>(dev)];
    }
    [[nodiscard]] int  devCount() const { return static_cast<int>(mEvents.size()); }
    [[nodiscard]] bool valid() const { return !mEvents.empty(); }

   private:
    std::vector<sys::EventPtr> mEvents;
};

}  // namespace neon::set
