#pragma once
// Backend: the Set-level handle to the execution resources (paper §IV-B).
// A Backend owns N devices, the execution engine and a pool of streams
// indexed (device, streamIdx). It is a cheap copyable handle; grids, fields
// and skeletons keep a copy.
//
// Construction goes through Backend::make(BackendSpec) — a named-field
// description that toString()/fromString() round-trip for bench logs — with
// simGpu()/cpu() as one-line preset wrappers. Observability (trace, Gantt,
// chrome-trace export, ExecutionReport aggregation) hangs off
// backend.profiler().

#include <cstdint>
#include <memory>
#include <string>
#include <vector>

#include "sys/cost_model.hpp"
#include "sys/data_barriers.hpp"
#include "sys/fault.hpp"
#include "sys/stream.hpp"

namespace neon::set {

class Profiler;
class Analyzer;

enum class EngineKind : uint8_t
{
    Sequential,  ///< deterministic discrete-event engine (default)
    Threaded,    ///< real worker threads, used to validate synchronization
};

std::string to_string(EngineKind k);

/// Everything needed to build a Backend, in one named-field struct.
/// `preset` names the SimConfig ("zeroCost" | "dgxA100" | "pcieGen3" |
/// "custom"); for the named presets the spec round-trips through
/// toString()/fromString(), so bench logs can record the exact machine.
struct BackendSpec
{
    int             nDevices = 1;
    sys::DeviceType deviceType = sys::DeviceType::CPU;
    EngineKind      engine = EngineKind::Sequential;
    sys::SimConfig  config = sys::SimConfig::zeroCost();
    std::string     preset = "zeroCost";
    /// Host worker threads per Backend for CPU-device kernels
    /// (docs/performance.md, "Host parallelism"). 0 = auto
    /// (hardware_concurrency). Overridden process-wide by NEON_THREADS.
    /// Results are bitwise identical for any value — chunking is derived
    /// from span sizes, never from this.
    int hostThreads = 0;
    /// Deterministic fault-injection plan installed on the engine at make()
    /// time (docs/robustness.md). Not part of the toString() round-trip.
    sys::FaultPlan faults;
    /// Per-device speed multipliers (empty = homogeneous). Device d's
    /// SimConfig gets memBandwidth and flopRate scaled by speedFactors[d] —
    /// the heterogeneous-machine knob the Repartitioner rebalances against
    /// (docs/robustness.md). Round-trips through toString() as
    /// "speed=1,0.5,...".
    std::vector<double> speedFactors;

    /// Fluent setter: spec.withFaults(plan) — enables fault injection.
    BackendSpec& withFaults(sys::FaultPlan plan)
    {
        faults = std::move(plan);
        return *this;
    }

    /// Fluent setter: spec.withSpeedFactors({1.0, 0.5}) — heterogeneous mix.
    BackendSpec& withSpeedFactors(std::vector<double> factors)
    {
        speedFactors = std::move(factors);
        return *this;
    }

    /// Fluent setter: spec.withHostThreads(8) — pool width for host kernels.
    BackendSpec& withHostThreads(int threads)
    {
        hostThreads = threads;
        return *this;
    }

    /// e.g. "SIM_GPU x4 engine=sequential preset=dgxA100". Appends
    /// " threads=N" when hostThreads is set and " dryRun" when
    /// config.dryRun is set.
    [[nodiscard]] std::string toString() const;
    /// Parse a toString() result back into a spec (named presets only;
    /// throws NeonException on malformed input or preset "custom").
    static BackendSpec fromString(const std::string& text);

    // Named-preset builders.
    static BackendSpec simGpu(int nDevices, sys::SimConfig config = sys::SimConfig::dgxA100Like(),
                              EngineKind engine = EngineKind::Sequential);
    static BackendSpec cpu(int nDevices = 1, EngineKind engine = EngineKind::Sequential);
};

class Backend
{
   public:
    /// Compatibility alias: historical code names the enum through the
    /// class (Backend::EngineKind::Threaded).
    using EngineKind = set::EngineKind;

    /// Default: one zero-cost CPU device, sequential engine.
    Backend();
    /// Positional form retained for compatibility; prefer make(BackendSpec).
    Backend(int nDevices, sys::DeviceType type, sys::SimConfig config,
            EngineKind engine = EngineKind::Sequential);

    /// The one construction entry point: build from a named-field spec.
    static Backend make(BackendSpec spec);

    /// n simulated GPUs with a DGX-A100-like cost model.
    static Backend simGpu(int nDevices,
                          sys::SimConfig config = sys::SimConfig::dgxA100Like(),
                          EngineKind     engine = EngineKind::Sequential);
    /// n zero-cost CPU devices (multi-device halo logic testable on CPU).
    static Backend cpu(int nDevices = 1, EngineKind engine = EngineKind::Sequential);

    [[nodiscard]] int          devCount() const;
    [[nodiscard]] sys::Device& device(int idx) const;
    [[nodiscard]] sys::Engine& engine() const;
    [[nodiscard]] const sys::SimConfig& config() const;
    [[nodiscard]] const BackendSpec&    spec() const;
    [[nodiscard]] bool         isDryRun() const;
    [[nodiscard]] EngineKind   engineKind() const;
    /// Resolved host-pool width (NEON_THREADS > spec.hostThreads > auto).
    [[nodiscard]] int          hostThreads() const;

    /// Stream `streamIdx` on device `dev`; created lazily.
    [[nodiscard]] sys::Stream& stream(int dev, int streamIdx = 0) const;

    /// Block the host until every stream on every device drained. Rethrows
    /// the engine's stored RuntimeError if a fault aborted execution.
    void sync() const;

    /// The engine's fault injector (install/replace a plan at runtime).
    [[nodiscard]] sys::FaultInjector& faults() const;

    /// Per-data-object inter-run event chains. Successive skeleton runs
    /// that touch the same fields are ordered through these chains
    /// regardless of which Skeleton object issued them (e.g. even/odd LBM
    /// steps), while runs over disjoint field sets share no events and
    /// overlap freely — the basis of the multi-tenant service
    /// (docs/service.md). Replaces the historical single backend-wide
    /// run barrier.
    [[nodiscard]] sys::DataBarriers& dataBarriers() const;

    /// Lease a contiguous block of `count` stream indices (first-fit over
    /// released blocks) so concurrent jobs enqueue onto disjoint streams.
    /// Returns the base index; pass it as RunScope::streamBase.
    [[nodiscard]] int leaseStreams(int count) const;
    /// Return a lease obtained from leaseStreams (the stream objects
    /// themselves persist — only the reservation is released).
    void releaseStreams(int base, int count) const;

    /// Zero all virtual clocks (between measured benchmark runs).
    void resetClocks() const;

    /// Monotone counter bumped by noteGeometryChange(). Containers record
    /// the epoch their launch records were built against; Skeleton::sequence
    /// rejects containers whose epoch lags this value, so a repartition can
    /// never silently launch kernels over stale spans (docs/robustness.md).
    [[nodiscard]] uint64_t geometryEpoch() const;
    /// Called by Grid::repartition after re-slicing: invalidates every
    /// container built against the previous geometry.
    void noteGeometryChange() const;

    /// Observability facade: trace recording, Gantt/chrome-trace export,
    /// makespan, ExecutionReport aggregation (set/profiler.hpp).
    [[nodiscard]] Profiler profiler() const;

    /// Race-analysis facade: schedule-log recording plus happens-before
    /// race reports (set/analyzer.hpp, docs/analysis.md).
    [[nodiscard]] Analyzer analysis() const;

    /// Fresh unique id for a Multi-GPU data object (dependency tracking).
    static uint64_t newDataUid();

    /// spec().toString(): round-trips through BackendSpec::fromString.
    [[nodiscard]] std::string toString() const;

   private:
    friend class Profiler;
    [[nodiscard]] sys::Trace& traceRef() const;
    [[nodiscard]] double      makespanNow() const;

    struct Impl;
    explicit Backend(std::shared_ptr<Impl> impl) : mImpl(std::move(impl)) {}
    std::shared_ptr<Impl> mImpl;
};

/// A column of the backend's stream matrix: stream `setIdx` on every device.
/// This is the paper's "multi-GPU Stream" (§IV-B4).
class StreamSet
{
   public:
    StreamSet() = default;
    StreamSet(Backend backend, int setIdx) : mBackend(std::move(backend)), mSetIdx(setIdx) {}

    [[nodiscard]] sys::Stream& operator[](int dev) const { return mBackend.stream(dev, mSetIdx); }
    [[nodiscard]] int          devCount() const { return mBackend.devCount(); }
    [[nodiscard]] int          setIdx() const { return mSetIdx; }

    void sync() const
    {
        for (int d = 0; d < devCount(); ++d) {
            (*this)[d].sync();
        }
    }

   private:
    Backend mBackend;
    int     mSetIdx = 0;
};

/// One event per device: the paper's "multi-GPU Event" (§IV-B4).
class EventSet
{
   public:
    EventSet() = default;
    static EventSet make(int nDevices)
    {
        EventSet es;
        es.mEvents.reserve(static_cast<size_t>(nDevices));
        for (int i = 0; i < nDevices; ++i) {
            es.mEvents.push_back(std::make_shared<sys::Event>());
        }
        return es;
    }

    [[nodiscard]] const sys::EventPtr& operator[](int dev) const
    {
        return mEvents[static_cast<size_t>(dev)];
    }
    [[nodiscard]] int  devCount() const { return static_cast<int>(mEvents.size()); }
    [[nodiscard]] bool valid() const { return !mEvents.empty(); }

   private:
    std::vector<sys::EventPtr> mEvents;
};

}  // namespace neon::set

// Complete the forward-declared Profiler/Analyzer for users of
// backend.profiler() / backend.analysis(): each facade header's own include
// of this header is guard-skipped, so the cycle resolves with all classes
// defined in either include order.
#include "set/analyzer.hpp"  // NOLINT
#include "set/profiler.hpp"  // NOLINT
