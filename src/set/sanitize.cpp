#include "set/sanitize.hpp"

#include <algorithm>
#include <cstdio>
#include <cstdlib>

namespace neon::set::sanitize {

bool envEnabled()
{
    static const bool on = [] {
        const char* v = std::getenv("NEON_SANITIZE");
        const bool  enabled = v != nullptr && v[0] != '\0' && v[0] != '0';
        if (enabled) {
            std::fprintf(stderr, "[neon-sanitize] enabled\n");
        }
        return enabled;
    }();
    return on;
}

Session& Session::instance()
{
    static Session s;
    return s;
}

void Session::commit(uint64_t seq, const std::string& name, int dev, int32_t haloRadius,
                     const AccessList& declared, const KernelMeta& meta,
                     const std::vector<AccessObs>& merged)
{
    std::lock_guard<std::mutex> lock(mMutex);
    Entry& e = mEntries[{seq, dev}];
    if (e.runs == 0) {
        e.seq = seq;
        e.container = name;
        e.dev = dev;
        e.haloRadius = haloRadius;
        e.declared = declared;
        e.loads = meta.loads;
        e.obs.assign(meta.loads.size(), AccessObs{});
    }
    const size_t n = std::min(e.obs.size(), merged.size());
    for (size_t i = 0; i < n; ++i) {
        e.obs[i].merge(merged[i]);
    }
    ++e.runs;
}

std::vector<Entry> Session::snapshot() const
{
    std::lock_guard<std::mutex> lock(mMutex);
    std::vector<Entry>          out;
    out.reserve(mEntries.size());
    for (const auto& [key, e] : mEntries) {
        out.push_back(e);
    }
    std::sort(out.begin(), out.end(), [](const Entry& a, const Entry& b) {
        if (a.container != b.container) {
            return a.container < b.container;
        }
        if (a.dev != b.dev) {
            return a.dev < b.dev;
        }
        return a.seq < b.seq;
    });
    return out;
}

void Session::clear()
{
    std::lock_guard<std::mutex> lock(mMutex);
    mEntries.clear();
}

}  // namespace neon::set::sanitize
