#pragma once
// Access-contract sanitizer instrumentation (docs/analysis.md, "Access
// sanitizer"). When a container is launched in sanitized mode the loading
// lambda receives a sanitize::Loader instead of a set::Loader; every load
// returns a sanitize::View wrapping the raw partition, and each access the
// kernel makes — reads, writes, neighbour lookups — is recorded into the
// per-chunk shadow Sink the sanitized trampoline installs around the chunk
// body (container.hpp). Chunk sinks are merged in chunk order into a
// process-wide Session, so the observation set — like every kernel result —
// is bitwise identical for any NEON_THREADS. neon::analysis::AccessSanitizer
// diffs the merged observations against the declared access lists.
//
// The normal (unsanitized) path never instantiates these types at runtime:
// Container::launch picks the plain trampoline records and kernels iterate
// raw partitions, so sanitize-off stays zero-cost (the bench_overhead
// dispatch and cached_ns CI gates hold with this header compiled in).

#include <cstdint>
#include <map>
#include <memory>
#include <mutex>
#include <string>
#include <type_traits>
#include <utility>
#include <vector>

#include "core/index3d.hpp"
#include "domain/span.hpp"
#include "set/access.hpp"

namespace neon::set::sanitize {

/// NEON_SANITIZE=1 (checked once; the first enabled check prints the
/// "[neon-sanitize] enabled" marker tools/neon-lint --sanitize greps for).
[[nodiscard]] bool envEnabled();

/// What one kernel did with one loaded uid on one device, merged over all
/// chunks and views. Every field merges monotonically (OR / max), so the
/// merged value is independent of chunk execution and commit order.
struct AccessObs
{
    bool    read = false;         ///< own-cell read (or proxy conversion)
    bool    written = false;      ///< own-cell write through the proxy
    bool    stencil = false;      ///< any ngh* call
    bool    outOfSpan = false;    ///< wrote a cell outside the launched span
    int32_t maxExtent = 0;        ///< largest stencilExtent over ngh* offsets
    int32_t maxComponent = 0;     ///< largest SoA component touched
    int32_t outOfSpanSlot = 0;    ///< example slot for the report (min slot)

    [[nodiscard]] bool touched() const { return read || written || stencil; }

    void noteRead(int32_t comp)
    {
        read = true;
        if (comp > maxComponent) {
            maxComponent = comp;
        }
    }

    void noteWrite(bool inSpan, int32_t slot, int32_t comp)
    {
        written = true;
        if (comp > maxComponent) {
            maxComponent = comp;
        }
        if (!inSpan) {
            if (!outOfSpan || slot < outOfSpanSlot) {
                outOfSpanSlot = slot;
            }
            outOfSpan = true;
        }
    }

    void noteNgh(int32_t extent, int32_t comp)
    {
        stencil = true;
        noteRead(comp);
        if (extent > maxExtent) {
            maxExtent = extent;
        }
    }

    void merge(const AccessObs& o)
    {
        read = read || o.read;
        written = written || o.written;
        stencil = stencil || o.stencil;
        if (o.outOfSpan) {
            if (!outOfSpan || o.outOfSpanSlot < outOfSpanSlot) {
                outOfSpanSlot = o.outOfSpanSlot;
            }
            outOfSpan = true;
        }
        maxExtent = maxExtent > o.maxExtent ? maxExtent : o.maxExtent;
        maxComponent = maxComponent > o.maxComponent ? maxComponent : o.maxComponent;
    }
};

/// One load the sanitized kernel was built with (slot index == position).
struct LoadMeta
{
    uint64_t    uid = 0;
    std::string name;
    bool        scalar = false;
    bool        unchecked = false;  ///< via loadUnchecked: no declaration
};

/// The load table of one sanitized kernel instantiation plus the grid's
/// halo radius (the bound StencilRadiusExceeded checks against).
struct KernelMeta
{
    std::vector<LoadMeta> loads;
    int32_t               haloRadius = 0;
};

/// Per-chunk shadow sink: one AccessObs per load slot plus the launched
/// span's slot ranges (for the OutOfSpanWrite check). Owned by the
/// sanitized trampoline — one per chunk, so pool workers never share.
class Sink
{
   public:
    void configure(size_t nLoads, domain::SpanRange r0, domain::SpanRange r1)
    {
        mObs.assign(nLoads, AccessObs{});
        mR0 = r0;
        mR1 = r1;
    }

    void clear() { mObs.assign(mObs.size(), AccessObs{}); }

    [[nodiscard]] bool inSpan(int32_t slot) const
    {
        return (slot >= mR0.first && slot < mR0.first + mR0.count) ||
               (slot >= mR1.first && slot < mR1.first + mR1.count);
    }

    [[nodiscard]] AccessObs& at(size_t slot) { return mObs[slot]; }
    [[nodiscard]] const std::vector<AccessObs>& obs() const { return mObs; }

   private:
    std::vector<AccessObs> mObs;
    domain::SpanRange      mR0{};
    domain::SpanRange      mR1{};
};

/// The sink the executing thread is currently recording into. Installed by
/// the sanitized trampoline around each chunk body — also on host-pool
/// worker threads, which is why it is thread-local rather than global.
[[nodiscard]] inline Sink*& currentSink()
{
    static thread_local Sink* tl = nullptr;
    return tl;
}

/// RAII install/restore of the per-chunk sink.
class ChunkScope
{
   public:
    explicit ChunkScope(Sink* sink) : mPrev(currentSink()) { currentSink() = sink; }
    ~ChunkScope() { currentSink() = mPrev; }
    ChunkScope(const ChunkScope&) = delete;
    ChunkScope& operator=(const ChunkScope&) = delete;

   private:
    Sink* mPrev;
};

/// Recording lvalue proxy returned by View::operator(): conversion to T is
/// a read, assignment is a write, compound assignment is both. Mirrors the
/// raw `T&` closely enough for the kernels in this codebase; kernels that
/// need a real reference can go through View::raw().
template <typename T>
class Ref
{
   public:
    Ref(T* ptr, AccessObs* obs, bool inSpan, int32_t slot, int32_t comp)
        : mPtr(ptr), mObs(obs), mInSpan(inSpan), mSlot(slot), mComp(comp)
    {
    }

    operator T() const  // NOLINT(google-explicit-constructor)
    {
        if (mObs != nullptr) {
            mObs->noteRead(mComp);
        }
        return *mPtr;
    }

    /// `static_cast<Enum>(view(cell))` and friends: a plain T conversion
    /// plus the cast would be two user conversions, so allow any direct
    /// static_cast target explicitly (still records the read).
    template <typename U, typename = decltype(static_cast<U>(std::declval<const T&>()))>
    explicit operator U() const
    {
        return static_cast<U>(static_cast<T>(*this));
    }

    Ref& operator=(const T& v)
    {
        noteWrite();
        *mPtr = v;
        return *this;
    }

    // `a(cell) = b(cell)`: without this the implicit copy assignment would
    // silently rebind the proxy instead of storing (and recording) a value.
    // Self-assignment is safe: the value is read out before the store.
    // NOLINTNEXTLINE(bugprone-unhandled-self-assignment)
    Ref& operator=(const Ref& o) { return *this = static_cast<T>(o); }

    Ref& operator+=(const T& v)
    {
        noteReadWrite();
        *mPtr += v;
        return *this;
    }

    Ref& operator-=(const T& v)
    {
        noteReadWrite();
        *mPtr -= v;
        return *this;
    }

    Ref& operator*=(const T& v)
    {
        noteReadWrite();
        *mPtr *= v;
        return *this;
    }

    Ref& operator/=(const T& v)
    {
        noteReadWrite();
        *mPtr /= v;
        return *this;
    }

   private:
    void noteWrite()
    {
        if (mObs != nullptr) {
            mObs->noteWrite(mInSpan, mSlot, mComp);
        }
    }

    void noteReadWrite()
    {
        if (mObs != nullptr) {
            mObs->noteRead(mComp);
            mObs->noteWrite(mInSpan, mSlot, mComp);
        }
    }

    T*         mPtr;
    AccessObs* mObs;
    bool       mInSpan;
    int32_t    mSlot;
    int32_t    mComp;
};

/// Instrumented partition view: wraps a raw partition (DPartition /
/// EPartition / BPartition / GlobalScalar::View) and forwards the kernel
/// surface — operator(), ngh*, globalIdx, cardinality — recording each call
/// into the current chunk Sink. Members are templates, so only the methods
/// a kernel actually uses need to exist on P.
template <typename P>
class View
{
   public:
    View() = default;
    View(P part, uint32_t slot) : mPart(std::move(part)), mSlot(slot) {}

    template <typename CellT>
    auto operator()(const CellT& cell, int32_t c = 0)
    {
        using T = std::remove_reference_t<decltype(mPart(cell, c))>;
        Sink*      sink = currentSink();
        AccessObs* obs = sink != nullptr ? &sink->at(mSlot) : nullptr;
        const int32_t slot = P::spanSlotOf(cell);
        const bool in = sink == nullptr || sink->inSpan(slot);
        return Ref<T>(&mPart(cell, c), obs, in, slot, c);
    }

    template <typename CellT>
    auto operator()(const CellT& cell, int32_t c = 0) const
    {
        note([&](AccessObs& o) { o.noteRead(c); });
        return mPart(cell, c);
    }

    /// GlobalScalar view surface (zero-arg read).
    auto operator()() const
    {
        note([](AccessObs& o) { o.noteRead(0); });
        return mPart();
    }

    template <typename CellT>
    auto nghData(const CellT& cell, const index_3d& offset, int32_t c = 0) const
    {
        note([&](AccessObs& o) { o.noteNgh(P::stencilExtent(offset), c); });
        return mPart.nghData(cell, offset, c);
    }

    template <typename CellT>
    auto nghVal(const CellT& cell, const index_3d& offset, int32_t c = 0) const
    {
        note([&](AccessObs& o) { o.noteNgh(P::stencilExtent(offset), c); });
        return mPart.nghVal(cell, offset, c);
    }

    template <typename CellT>
    auto nghValUnchecked(const CellT& cell, const index_3d& offset, int32_t c = 0) const
    {
        note([&](AccessObs& o) { o.noteNgh(P::stencilExtent(offset), c); });
        return mPart.nghValUnchecked(cell, offset, c);
    }

    /// Slot-indexed neighbour read (EGrid): the offset is opaque, so the
    /// stencil use is recorded but the radius cannot be checked.
    template <typename CellT>
    auto nghDataSlot(const CellT& cell, int32_t nghSlot, int32_t c = 0) const
    {
        note([&](AccessObs& o) { o.noteNgh(0, c); });
        return mPart.nghDataSlot(cell, nghSlot, c);
    }

    template <typename CellT>
    auto globalIdx(const CellT& cell) const
    {
        return mPart.globalIdx(cell);
    }

    [[nodiscard]] int32_t cardinality() const { return mPart.cardinality(); }

    /// Escape hatch to the raw partition (unrecorded).
    [[nodiscard]] P&       raw() { return mPart; }
    [[nodiscard]] const P& raw() const { return mPart; }

   private:
    template <typename Fn>
    void note(Fn&& fn) const
    {
        if (Sink* sink = currentSink(); sink != nullptr) {
            fn(sink->at(mSlot));
        }
    }

    P        mPart{};
    uint32_t mSlot = 0;
};

/// Drop-in replacement for set::Loader handed to generic loading lambdas
/// when the sanitized trampoline is built: load() registers the uid in the
/// kernel's load table and returns an instrumented View over the raw
/// partition. Declarations were already parsed by the real Loader — this
/// one only mirrors the execution side.
class Loader
{
   public:
    Loader(int devIdx, DataView view, KernelMeta* meta)
        : mDevIdx(devIdx), mView(view), mMeta(meta)
    {
    }

    template <typename DataT>
    auto load(DataT& data, Access access, Compute compute = Compute::MAP)
    {
        (void)access;
        (void)compute;
        return record(data, false);
    }

    /// Mirror of set::Loader::loadUnchecked: access without a declaration.
    /// The sanitizer reports any touch through it as UndeclaredRead/Write.
    template <typename DataT>
    auto loadUnchecked(DataT& data)
    {
        return record(data, true);
    }

    [[nodiscard]] bool     isParsing() const { return false; }
    [[nodiscard]] int      devIdx() const { return mDevIdx; }
    [[nodiscard]] DataView view() const { return mView; }

   private:
    template <typename DataT>
    auto record(DataT& data, bool unchecked)
    {
        const auto slot = static_cast<uint32_t>(mMeta->loads.size());
        LoadMeta   lm;
        lm.uid = data.uid();
        lm.name = data.name();
        lm.unchecked = unchecked;
        if constexpr (requires { std::remove_cvref_t<DataT>::kIsGlobalScalar; }) {
            lm.scalar = true;
        }
        mMeta->loads.push_back(std::move(lm));
        using PartT = decltype(data.getPartition(mDevIdx, mView));
        return View<PartT>(data.getPartition(mDevIdx, mView), slot);
    }

    int         mDevIdx = 0;
    DataView    mView = DataView::STANDARD;
    KernelMeta* mMeta = nullptr;
};

/// Merged observations of one (container, device) pair across all views
/// and runs, plus everything the diff needs: the declared access list and
/// the kernel's load table.
struct Entry
{
    uint64_t                seq = 0;  ///< container creation ordinal
    std::string             container;
    int                     dev = -1;
    int32_t                 haloRadius = 0;
    AccessList              declared;
    std::vector<LoadMeta>   loads;
    std::vector<AccessObs>  obs;  ///< parallel to loads
    int                     runs = 0;
};

/// Process-wide collection point. Trampoline finalize() commits the merged
/// chunk observations here (under a mutex — commits may race across engine
/// worker threads, but every merge is monotone and entries are keyed by
/// (container seq, device), so the final state is order-independent).
class Session
{
   public:
    static Session& instance();

    void commit(uint64_t seq, const std::string& name, int dev, int32_t haloRadius,
                const AccessList& declared, const KernelMeta& meta,
                const std::vector<AccessObs>& merged);

    /// Stable order: (container name, device, seq).
    [[nodiscard]] std::vector<Entry> snapshot() const;

    void clear();

   private:
    mutable std::mutex                        mMutex;
    std::map<std::pair<uint64_t, int>, Entry> mEntries;
};

}  // namespace neon::set::sanitize
