#pragma once
// MemSet<T>: the simplest Multi-GPU data object (paper §IV-B1, Fig. 2).
// A set of device buffers (one per device), optionally mirrored on the
// host. Exposes the *host logical view* (a contiguous index space spanning
// all partitions) and the *partition local view* (per-device raw buffers).

#include <cstring>
#include <memory>
#include <numeric>
#include <string>
#include <vector>

#include "core/error.hpp"
#include "set/backend.hpp"
#include "sys/device.hpp"

namespace neon::set {

template <typename T>
class MemSet
{
   public:
    MemSet() = default;

    /// Allocate `counts[d]` elements of T on device d (plus a host mirror
    /// unless disabled or in dry-run mode).
    MemSet(Backend backend, std::string name, std::vector<size_t> counts, bool hostMirror = true)
        : mImpl(std::make_shared<Impl>())
    {
        NEON_CHECK(static_cast<int>(counts.size()) == backend.devCount(),
                   "one count per device required");
        mImpl->backend = std::move(backend);
        mImpl->name = std::move(name);
        mImpl->counts = std::move(counts);
        mImpl->uid = Backend::newDataUid();
        mImpl->devBuffers.resize(mImpl->counts.size(), nullptr);
        for (size_t d = 0; d < mImpl->counts.size(); ++d) {
            mImpl->devBuffers[d] = static_cast<T*>(
                mImpl->backend.device(static_cast<int>(d)).alloc(mImpl->counts[d] * sizeof(T)));
        }
        if (hostMirror && !mImpl->backend.isDryRun()) {
            mImpl->hostBuffers.resize(mImpl->counts.size());
            for (size_t d = 0; d < mImpl->counts.size(); ++d) {
                mImpl->hostBuffers[d].assign(mImpl->counts[d], T{});
            }
        }
    }

    [[nodiscard]] bool valid() const { return mImpl != nullptr; }

    [[nodiscard]] int setCount() const { return static_cast<int>(mImpl->counts.size()); }

    [[nodiscard]] size_t count(int dev) const { return mImpl->counts[static_cast<size_t>(dev)]; }

    [[nodiscard]] size_t totalCount() const
    {
        return std::accumulate(mImpl->counts.begin(), mImpl->counts.end(), size_t{0});
    }

    [[nodiscard]] T* rawDev(int dev) const { return mImpl->devBuffers[static_cast<size_t>(dev)]; }

    [[nodiscard]] T* rawHost(int dev) const
    {
        NEON_CHECK(hasHostMirror(), "MemSet has no host mirror");
        return mImpl->hostBuffers[static_cast<size_t>(dev)].data();
    }

    [[nodiscard]] bool hasHostMirror() const { return !mImpl->hostBuffers.empty(); }

    [[nodiscard]] uint64_t uid() const { return mImpl->uid; }

    [[nodiscard]] const std::string& name() const { return mImpl->name; }

    [[nodiscard]] Backend& backend() const { return mImpl->backend; }

    /// Host logical view: element `g` of the concatenated partitions.
    [[nodiscard]] T& eRef(size_t g) const
    {
        NEON_CHECK(hasHostMirror(), "MemSet has no host mirror");
        for (size_t d = 0; d < mImpl->counts.size(); ++d) {
            if (g < mImpl->counts[d]) {
                return mImpl->hostBuffers[d][g];
            }
            g -= mImpl->counts[d];
        }
        throw NeonException("MemSet::eRef index out of range");
    }

    /// Copy the host mirror into the device buffers (synchronous; used for
    /// initialization — not part of the measured virtual timeline).
    void updateDev() const
    {
        if (mImpl->backend.isDryRun() || !hasHostMirror()) {
            return;
        }
        for (size_t d = 0; d < mImpl->counts.size(); ++d) {
            if (mImpl->counts[d] > 0) {
                std::memcpy(mImpl->devBuffers[d], mImpl->hostBuffers[d].data(),
                            mImpl->counts[d] * sizeof(T));
            }
        }
    }

    /// Copy the device buffers back into the host mirror (synchronous).
    void updateHost() const
    {
        if (mImpl->backend.isDryRun() || !hasHostMirror()) {
            return;
        }
        for (size_t d = 0; d < mImpl->counts.size(); ++d) {
            if (mImpl->counts[d] > 0) {
                std::memcpy(mImpl->hostBuffers[d].data(), mImpl->devBuffers[d],
                            mImpl->counts[d] * sizeof(T));
            }
        }
    }

   private:
    struct Impl
    {
        Backend                     backend;
        std::string                 name;
        std::vector<size_t>         counts;
        std::vector<T*>             devBuffers;
        std::vector<std::vector<T>> hostBuffers;
        uint64_t                    uid = 0;

        ~Impl()
        {
            for (size_t d = 0; d < devBuffers.size(); ++d) {
                backend.device(static_cast<int>(d)).free(devBuffers[d]);
            }
        }
    };
    std::shared_ptr<Impl> mImpl;
};

}  // namespace neon::set
