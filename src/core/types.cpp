#include "core/types.hpp"

#include "core/index3d.hpp"

namespace neon {

std::string to_string(DataView v)
{
    switch (v) {
        case DataView::STANDARD: return "STANDARD";
        case DataView::INTERNAL: return "INTERNAL";
        case DataView::BOUNDARY: return "BOUNDARY";
    }
    return "?";
}

std::string to_string(Compute c)
{
    switch (c) {
        case Compute::MAP: return "MAP";
        case Compute::STENCIL: return "STENCIL";
        case Compute::REDUCE: return "REDUCE";
    }
    return "?";
}

std::string to_string(Access a)
{
    return a == Access::READ ? "READ" : "WRITE";
}

std::string to_string(MemLayout l)
{
    return l == MemLayout::structOfArrays ? "SoA" : "AoS";
}

std::string to_string(Occ o)
{
    switch (o) {
        case Occ::NONE: return "none";
        case Occ::STANDARD: return "standard";
        case Occ::EXTENDED: return "extended";
        case Occ::TWO_WAY: return "twoWayExtended";
    }
    return "?";
}

std::string index_3d::to_string() const
{
    return "(" + std::to_string(x) + ", " + std::to_string(y) + ", " + std::to_string(z) + ")";
}

std::ostream& operator<<(std::ostream& os, const index_3d& i)
{
    return os << i.to_string();
}

}  // namespace neon
