#pragma once
// Stencil: the set of neighbour offsets a computation reads (paper §III-b).
// Grids use the union of all registered stencils to size halos and to
// classify cells into internal/boundary (paper §IV-C1).

#include <string>
#include <vector>

#include "core/index3d.hpp"

namespace neon {

class Stencil
{
   public:
    Stencil() = default;
    explicit Stencil(std::vector<index_3d> offsets, std::string name = "custom");

    /// 6-point von-Neumann neighbourhood (7-point Laplacian without centre).
    static Stencil laplace7();
    /// Full 26-neighbour box (27-point FEM stencil without centre).
    static Stencil box27();
    /// D3Q19 lattice directions (centre excluded).
    static Stencil lbmD3Q19();
    /// D2Q9 lattice directions in the z=0 plane (centre excluded).
    static Stencil lbmD2Q9();

    static Stencil unionOf(const std::vector<Stencil>& stencils);

    // Ref-qualified: `for (auto& p : Stencil::laplace7().points())` on the
    // temporary must copy the vector out — the lvalue overload's reference
    // would dangle once the temporary dies at the end of the range-for init.
    [[nodiscard]] const std::vector<index_3d>& points() const& { return mPoints; }
    [[nodiscard]] std::vector<index_3d>        points() && { return std::move(mPoints); }
    [[nodiscard]] int  pointCount() const { return static_cast<int>(mPoints.size()); }
    /// Max |z| over offsets: the halo radius for 1-D z partitioning.
    [[nodiscard]] int zRadius() const { return mZRadius; }
    /// Max |component| over offsets (extent of the offset->slot LUT).
    [[nodiscard]] int radius() const { return mRadius; }
    [[nodiscard]] const std::string& name() const { return mName; }

    /// Index of an offset within points(), or -1.
    [[nodiscard]] int findPoint(const index_3d& offset) const;

   private:
    std::vector<index_3d> mPoints;
    std::string           mName = "empty";
    int                   mZRadius = 0;
    int                   mRadius = 0;
};

}  // namespace neon
