#include "core/stencil.hpp"

#include <algorithm>
#include <cstdlib>

namespace neon {

Stencil::Stencil(std::vector<index_3d> offsets, std::string name)
    : mPoints(std::move(offsets)), mName(std::move(name))
{
    for (const auto& p : mPoints) {
        mZRadius = std::max(mZRadius, std::abs(p.z));
        mRadius = std::max({mRadius, std::abs(p.x), std::abs(p.y), std::abs(p.z)});
    }
}

Stencil Stencil::laplace7()
{
    return Stencil({{1, 0, 0}, {-1, 0, 0}, {0, 1, 0}, {0, -1, 0}, {0, 0, 1}, {0, 0, -1}},
                   "laplace7");
}

Stencil Stencil::box27()
{
    std::vector<index_3d> pts;
    for (int z = -1; z <= 1; ++z) {
        for (int y = -1; y <= 1; ++y) {
            for (int x = -1; x <= 1; ++x) {
                if (x != 0 || y != 0 || z != 0) {
                    pts.push_back({x, y, z});
                }
            }
        }
    }
    return Stencil(std::move(pts), "box27");
}

Stencil Stencil::lbmD3Q19()
{
    std::vector<index_3d> pts;
    for (int z = -1; z <= 1; ++z) {
        for (int y = -1; y <= 1; ++y) {
            for (int x = -1; x <= 1; ++x) {
                const int nonZero = (x != 0) + (y != 0) + (z != 0);
                if (nonZero == 1 || nonZero == 2) {
                    pts.push_back({x, y, z});
                }
            }
        }
    }
    return Stencil(std::move(pts), "lbmD3Q19");  // 18 directions + rest = D3Q19
}

Stencil Stencil::lbmD2Q9()
{
    std::vector<index_3d> pts;
    for (int y = -1; y <= 1; ++y) {
        for (int x = -1; x <= 1; ++x) {
            if (x != 0 || y != 0) {
                pts.push_back({x, y, 0});
            }
        }
    }
    return Stencil(std::move(pts), "lbmD2Q9");
}

Stencil Stencil::unionOf(const std::vector<Stencil>& stencils)
{
    std::vector<index_3d> pts;
    for (const auto& s : stencils) {
        for (const auto& p : s.points()) {
            if (std::find(pts.begin(), pts.end(), p) == pts.end()) {
                pts.push_back(p);
            }
        }
    }
    return Stencil(std::move(pts), "union");
}

int Stencil::findPoint(const index_3d& offset) const
{
    auto it = std::find(mPoints.begin(), mPoints.end(), offset);
    return it == mPoints.end() ? -1 : static_cast<int>(it - mPoints.begin());
}

}  // namespace neon
