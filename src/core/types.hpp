#pragma once
// Enumerations shared across the Set / Domain / Skeleton layers
// (paper §III-b and §IV-B).

#include <cstdint>
#include <string>

namespace neon {

/// Which subset of a partition a kernel iterates (paper §IV-C1, Fig. 3).
enum class DataView : uint8_t
{
    STANDARD,  ///< internal + boundary cells
    INTERNAL,  ///< cells whose stencil touches only local data
    BOUNDARY,  ///< cells whose stencil reads halo data
};

/// Compute pattern a field is loaded for (paper §III-b).
enum class Compute : uint8_t
{
    MAP,      ///< cell-local access
    STENCIL,  ///< neighbourhood access; requires halo coherence
    REDUCE,   ///< participates in a reduction
};

/// Access mode recorded by the Loader for dependency analysis.
enum class Access : uint8_t
{
    READ,
    WRITE,
};

/// Memory layout for multi-component (vector) fields (paper §IV-C2).
enum class MemLayout : uint8_t
{
    structOfArrays,  ///< [component][cell]
    arrayOfStructs,  ///< [cell][component]
};

/// Overlap-of-computation-and-communication variants (paper §V-B).
enum class Occ : uint8_t
{
    NONE,      ///< no stencil split; halo update is a hard barrier
    STANDARD,  ///< split stencil nodes into internal/boundary
    EXTENDED,  ///< also split map nodes preceding the stencil
    TWO_WAY,   ///< also split map/reduce nodes following the stencil
};

std::string to_string(DataView v);
std::string to_string(Compute c);
std::string to_string(Access a);
std::string to_string(MemLayout l);
std::string to_string(Occ o);

}  // namespace neon
