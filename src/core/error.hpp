#pragma once
// Error types and assertion helpers shared by all Neon layers.

#include <source_location>
#include <stdexcept>
#include <string>

namespace neon {

/// Base class for all errors raised by the library.
class NeonException : public std::runtime_error
{
   public:
    explicit NeonException(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a (simulated) device allocation exceeds the device capacity.
/// Reproduces the out-of-memory data point in the paper's Fig. 9.
class DeviceMemoryError : public NeonException
{
   public:
    DeviceMemoryError(int deviceId, size_t requested, size_t inUse, size_t capacity)
        : NeonException("device " + std::to_string(deviceId) + " out of memory: requested " +
                        std::to_string(requested) + " B with " + std::to_string(inUse) +
                        " B in use of " + std::to_string(capacity) + " B capacity"),
          deviceId(deviceId),
          requested(requested),
          inUse(inUse),
          capacity(capacity)
    {
    }

    int    deviceId;
    size_t requested;
    size_t inUse;
    size_t capacity;
};

/// Internal invariant violation (scheduler/runtime bug, not user error).
class InternalError : public NeonException
{
   public:
    explicit InternalError(const std::string& what) : NeonException("internal error: " + what) {}
};

namespace detail {
[[noreturn]] inline void throwAssert(const char*                 expr,
                                     const std::string&          msg,
                                     const std::source_location& loc)
{
    throw NeonException(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                        ": assertion (" + expr + ") failed: " + msg);
}
}  // namespace detail

/// Always-on checked assertion. Used for user-facing API contract checks.
#define NEON_CHECK(expr, msg)                                                        \
    do {                                                                             \
        if (!(expr)) {                                                               \
            ::neon::detail::throwAssert(#expr, (msg), std::source_location::current()); \
        }                                                                            \
    } while (0)

}  // namespace neon
