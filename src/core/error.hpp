#pragma once
// Error types and assertion helpers shared by all Neon layers.

#include <cstdint>
#include <source_location>
#include <stdexcept>
#include <string>

namespace neon {

/// Base class for all errors raised by the library.
class NeonException : public std::runtime_error
{
   public:
    explicit NeonException(const std::string& what) : std::runtime_error(what) {}
};

/// Raised when a (simulated) device allocation exceeds the device capacity.
/// Reproduces the out-of-memory data point in the paper's Fig. 9.
class DeviceMemoryError : public NeonException
{
   public:
    DeviceMemoryError(int deviceId, size_t requested, size_t inUse, size_t capacity)
        : NeonException("device " + std::to_string(deviceId) + " out of memory: requested " +
                        std::to_string(requested) + " B with " + std::to_string(inUse) +
                        " B in use of " + std::to_string(capacity) + " B capacity"),
          deviceId(deviceId),
          requested(requested),
          inUse(inUse),
          capacity(capacity)
    {
    }

    int    deviceId;
    size_t requested;
    size_t inUse;
    size_t capacity;
};

/// Internal invariant violation (scheduler/runtime bug, not user error).
class InternalError : public NeonException
{
   public:
    explicit InternalError(const std::string& what) : NeonException("internal error: " + what) {}
};

/// Structured runtime fault raised by the execution engines
/// (docs/robustness.md): a transfer that exhausted its retry budget, a
/// permanently lost device, an op that exceeded the virtual per-op timeout,
/// or a host-side sync/event wait that exceeded the wall-clock timeout.
/// Every error carries full attribution — device, stream, op kind/name and
/// the skeleton container/run that enqueued the op — so a failure is never
/// a bare hang or a silent wrong result.
class RuntimeError : public NeonException
{
   public:
    enum class Kind : uint8_t
    {
        TransferFailed,  ///< transfer failed on every attempt of the retry budget
        DeviceLost,      ///< op targeted a permanently lost device
        OpTimeout,       ///< op exceeded SimConfig::opTimeout (virtual seconds)
        SyncTimeout,     ///< host wait exceeded SimConfig::hostSyncTimeout (wall)
        AdmissionRejected,  ///< neon::service refused the submission (quota/limits)
    };

    struct Info
    {
        Kind        kind = Kind::DeviceLost;
        int         device = -1;
        int         stream = -1;
        std::string opKind;  ///< "kernel" | "transfer" | "hostFn" | "wait" | "sync" | "submit"
        std::string opName;
        int         containerId = -1;  ///< skeleton graph-node id, -1 outside a skeleton
        int         runId = -1;        ///< skeleton run() window id, -1 outside
        int         attempts = 0;      ///< TransferFailed: attempts made before giving up
        double      timeout = 0.0;     ///< *Timeout kinds: the configured limit [s]
        /// Filled by the Skeleton abort path: label of the graph node and
        /// the last run whose effects are declared consistent.
        std::string containerLabel;
        int         lastCompletedRun = -1;
        /// Filled by neon::service: which job/tenant the failure belongs to.
        int         jobId = -1;
        std::string tenant;
    };

    explicit RuntimeError(Info info) : NeonException(format(info)), info(std::move(info)) {}

    Info info;

   private:
    static std::string format(const Info& i)
    {
        std::string kind;
        switch (i.kind) {
            case Kind::TransferFailed: kind = "transfer failed"; break;
            case Kind::DeviceLost: kind = "device lost"; break;
            case Kind::OpTimeout: kind = "op timeout"; break;
            case Kind::SyncTimeout: kind = "sync timeout"; break;
            case Kind::AdmissionRejected: kind = "admission rejected"; break;
        }
        std::string msg = "runtime fault [" + kind + "]: " + (i.opKind.empty() ? "op" : i.opKind);
        if (!i.opName.empty()) {
            msg += " '" + i.opName + "'";
        }
        if (i.device >= 0) {
            msg += " on dev" + std::to_string(i.device) + "/s" + std::to_string(i.stream);
        }
        if (i.kind == Kind::TransferFailed) {
            msg += " after " + std::to_string(i.attempts) + " attempt(s)";
        }
        if (i.timeout > 0.0) {
            msg += " (limit " + std::to_string(i.timeout) + " s)";
        }
        if (i.containerId >= 0 || !i.containerLabel.empty()) {
            msg += ", container " +
                   (i.containerLabel.empty() ? std::to_string(i.containerId) : i.containerLabel);
        }
        if (i.runId >= 0) {
            msg += ", run " + std::to_string(i.runId);
        }
        if (i.jobId >= 0) {
            msg += ", job " + std::to_string(i.jobId);
        }
        if (!i.tenant.empty()) {
            msg += ", tenant '" + i.tenant + "'";
        }
        if (i.lastCompletedRun >= 0) {
            msg += " (last completed run: " + std::to_string(i.lastCompletedRun) + ")";
        }
        return msg;
    }
};

namespace detail {
[[noreturn]] inline void throwAssert(const char*                 expr,
                                     const std::string&          msg,
                                     const std::source_location& loc)
{
    throw NeonException(std::string(loc.file_name()) + ":" + std::to_string(loc.line()) +
                        ": assertion (" + expr + ") failed: " + msg);
}
}  // namespace detail

/// Always-on checked assertion. Used for user-facing API contract checks.
#define NEON_CHECK(expr, msg)                                                        \
    do {                                                                             \
        if (!(expr)) {                                                               \
            ::neon::detail::throwAssert(#expr, (msg), std::source_location::current()); \
        }                                                                            \
    } while (0)

}  // namespace neon
