#include "core/log.hpp"

#include <cstdlib>
#include <iostream>
#include <mutex>

namespace neon::log {

int level()
{
    static const int lvl = [] {
        const char* env = std::getenv("NEON_LOG_LEVEL");
        return env != nullptr ? std::atoi(env) : 0;
    }();
    return lvl;
}

void emit(int lvl, const std::string& msg)
{
    static std::mutex      mtx;
    static const char*     tags[] = {"", "[neon:info] ", "[neon:debug] ", "[neon:trace] "};
    std::lock_guard<std::mutex> lock(mtx);
    std::cerr << tags[lvl < 4 ? lvl : 3] << msg << "\n";
}

}  // namespace neon::log
