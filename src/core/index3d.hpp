#pragma once
// 3-component integer index used for grid dimensions, cell coordinates and
// stencil offsets. Mirrors Neon's index_3d (paper §III, Listing 1).

#include <cstddef>
#include <cstdint>
#include <functional>
#include <ostream>
#include <string>

namespace neon {

struct index_3d
{
    int32_t x = 0;
    int32_t y = 0;
    int32_t z = 0;

    constexpr index_3d() = default;
    constexpr index_3d(int32_t xi, int32_t yi, int32_t zi) : x(xi), y(yi), z(zi) {}
    /// Uniform constructor: (v, v, v).
    constexpr explicit index_3d(int32_t v) : x(v), y(v), z(v) {}

    /// Number of cells in the box [0, x) x [0, y) x [0, z).
    [[nodiscard]] constexpr size_t size() const
    {
        return static_cast<size_t>(x) * static_cast<size_t>(y) * static_cast<size_t>(z);
    }

    /// Row-major (x fastest) linearization of a coordinate within this box.
    [[nodiscard]] constexpr size_t pitch(const index_3d& p) const
    {
        return static_cast<size_t>(p.x) +
               static_cast<size_t>(p.y) * static_cast<size_t>(x) +
               static_cast<size_t>(p.z) * static_cast<size_t>(x) * static_cast<size_t>(y);
    }

    /// Inverse of pitch(): delinearize a flat index into a coordinate.
    [[nodiscard]] constexpr index_3d fromPitch(size_t flat) const
    {
        const size_t plane = static_cast<size_t>(x) * static_cast<size_t>(y);
        return {static_cast<int32_t>(flat % static_cast<size_t>(x)),
                static_cast<int32_t>((flat % plane) / static_cast<size_t>(x)),
                static_cast<int32_t>(flat / plane)};
    }

    /// True when p lies inside the box [0, x) x [0, y) x [0, z).
    [[nodiscard]] constexpr bool contains(const index_3d& p) const
    {
        return p.x >= 0 && p.y >= 0 && p.z >= 0 && p.x < x && p.y < y && p.z < z;
    }

    constexpr index_3d operator+(const index_3d& o) const { return {x + o.x, y + o.y, z + o.z}; }
    constexpr index_3d operator-(const index_3d& o) const { return {x - o.x, y - o.y, z - o.z}; }
    constexpr index_3d operator*(int32_t s) const { return {x * s, y * s, z * s}; }
    constexpr bool     operator==(const index_3d& o) const = default;

    /// Lexicographic (z, y, x) order; matches the cell ordering used by grids.
    [[nodiscard]] constexpr bool zyxLess(const index_3d& o) const
    {
        if (z != o.z) return z < o.z;
        if (y != o.y) return y < o.y;
        return x < o.x;
    }

    [[nodiscard]] std::string to_string() const;

    /// Visit every coordinate of the box in (z, y, x)-major order.
    template <typename Fn>
    void forEach(Fn&& fn) const
    {
        for (int32_t zi = 0; zi < z; ++zi)
            for (int32_t yi = 0; yi < y; ++yi)
                for (int32_t xi = 0; xi < x; ++xi)
                    fn(index_3d{xi, yi, zi});
    }
};

std::ostream& operator<<(std::ostream& os, const index_3d& i);

}  // namespace neon

template <>
struct std::hash<neon::index_3d>
{
    size_t operator()(const neon::index_3d& i) const noexcept
    {
        size_t h = static_cast<size_t>(static_cast<uint32_t>(i.x));
        h = h * 0x9E3779B97F4A7C15ull + static_cast<uint32_t>(i.y);
        h = h * 0x9E3779B97F4A7C15ull + static_cast<uint32_t>(i.z);
        return h;
    }
};
