#pragma once
// Minimal leveled logger. Off by default; enable with NEON_LOG_LEVEL env var
// (0 = off, 1 = info, 2 = debug, 3 = trace).

#include <sstream>
#include <string>

namespace neon::log {

int level();

void emit(int lvl, const std::string& msg);

template <typename... Args>
void info(Args&&... args)
{
    if (level() >= 1) {
        std::ostringstream os;
        (os << ... << args);
        emit(1, os.str());
    }
}

template <typename... Args>
void debug(Args&&... args)
{
    if (level() >= 2) {
        std::ostringstream os;
        (os << ... << args);
        emit(2, os.str());
    }
}

template <typename... Args>
void trace(Args&&... args)
{
    if (level() >= 3) {
        std::ostringstream os;
        (os << ... << args);
        emit(3, os.str());
    }
}

}  // namespace neon::log
