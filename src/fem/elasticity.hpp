#pragma once
// Matrix-free linear-elastic solver (paper §VI-C): a voxel FEM where grid
// cells are element-mesh *nodes* and each node gathers from its 27-point
// neighbourhood using precomputed 3x3 stiffness blocks.
//
// Per-neighbour blocks depend on which of the node's 8 incident elements
// exist; we precompute a table over all 256 activity masks so the kernel
// reduces to: build mask (27 activity reads) -> 27 block-times-vector
// accumulations. Node activity is carried by a cardinality-1 field, so the
// same kernel runs on a dense grid with a masked (sparse-in-dense) domain
// and on an element-sparse EGrid — the exact comparison of Fig. 9.
//
// Boundary conditions of the paper's benchmark: displacements fixed to 0 at
// the z = 0 plane (Dirichlet, applied by constraint projection so the
// operator stays SPD) and an outward pressure on the z = N-1 plane
// (Neumann, entering through the right-hand side).

#include <memory>
#include <vector>

#include "core/index3d.hpp"
#include "fem/hex8.hpp"
#include "solver/cg.hpp"

namespace neon::fem {

/// 27 neighbour offsets in (z, y, x)-major order; index via nghSlot().
constexpr int nghSlot(int dx, int dy, int dz)
{
    return (dz + 1) * 9 + (dy + 1) * 3 + (dx + 1);
}

/// Precomputed node-stencil stiffness blocks for every incident-element
/// activity mask. K(mask, slot) is the 3x3 block coupling a node to its
/// neighbour at offset slot, summed over the active incident elements.
class NodeStencilTable
{
   public:
    NodeStencilTable(const Material& material, double h);

    /// Raw block pointer: 9 doubles, row-major.
    [[nodiscard]] const double* block(int mask, int slot) const
    {
        return mBlocks.data() + ((static_cast<size_t>(mask) * 27 + static_cast<size_t>(slot)) * 9);
    }

    /// Incident element corner offsets: element c (0..7) has its origin at
    /// node + cornerOrigin(c), components in {-1, 0}.
    static constexpr std::array<int, 3> cornerOrigin(int c)
    {
        const auto k = hex8Corner(c);
        return {k[0] - 1, k[1] - 1, k[2] - 1};
    }

   private:
    std::vector<double> mBlocks;  ///< [mask][slot][3x3]
};

/// Problem definition shared by the Neon container and the reference code.
struct ElasticProblem
{
    Material material;
    double   h = 1.0;         ///< element size
    double   pressure = 1.0;  ///< outward pressure on the top (z max) face
    std::shared_ptr<const NodeStencilTable> table;

    explicit ElasticProblem(Material m = {}, double hh = 1.0, double p = 1.0)
        : material(m), h(hh), pressure(p),
          table(std::make_shared<NodeStencilTable>(m, hh))
    {
    }
};

/// Container factory: out = A*in where A is the constrained stiffness
/// P K P + (I - P). `act` flags active nodes (1) and is stencil-read.
template <typename Grid, typename FieldT, typename FlagFieldT>
set::Container makeElasticApply(const Grid& grid, const ElasticProblem& problem, FlagFieldT act,
                                FieldT in, FieldT out, std::string name = "elasticApply")
{
    auto          table = problem.table;
    const int32_t zTop = grid.dim().z;  // unused placeholder to keep layout uniform
    (void)zTop;
    return grid.newContainer(std::move(name), [table, act, in, out](auto& l) mutable {
        auto ap = l.load(act, Access::READ, Compute::STENCIL);
        auto up = l.load(in, Access::READ, Compute::STENCIL);
        auto op = l.load(out, Access::WRITE);
        return [=](const auto& cell) mutable {
            // Local activity neighbourhood (node exists and is active).
            bool nodeActive[27];
            for (int dz = -1; dz <= 1; ++dz) {
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        if (dx == 0 && dy == 0 && dz == 0) {
                            nodeActive[nghSlot(0, 0, 0)] = ap(cell) != 0;
                        } else {
                            const auto a = ap.nghData(cell, {dx, dy, dz}, 0);
                            nodeActive[nghSlot(dx, dy, dz)] = a.isValid && a.value != 0;
                        }
                    }
                }
            }
            const index_3d g = up.globalIdx(cell);
            if (!nodeActive[nghSlot(0, 0, 0)]) {
                // Inactive (masked) node: identity row keeps A SPD.
                for (int d = 0; d < 3; ++d) {
                    op(cell, d) = up(cell, d);
                }
                return;
            }
            // Incident-element mask: element c exists iff its 8 nodes are
            // active.
            int mask = 0;
            for (int c = 0; c < 8; ++c) {
                const auto o = NodeStencilTable::cornerOrigin(c);
                bool       all = true;
                for (int n = 0; n < 8 && all; ++n) {
                    const auto k = hex8Corner(n);
                    all = nodeActive[nghSlot(o[0] + k[0], o[1] + k[1], o[2] + k[2])];
                }
                if (all) {
                    mask |= 1 << c;
                }
            }
            const bool fixedSelf = g.z == 0;
            if (fixedSelf) {
                // Dirichlet row: out = u (projection keeps SPD).
                for (int d = 0; d < 3; ++d) {
                    op(cell, d) = up(cell, d);
                }
                return;
            }
            double acc[3] = {0.0, 0.0, 0.0};
            for (int dz = -1; dz <= 1; ++dz) {
                for (int dy = -1; dy <= 1; ++dy) {
                    for (int dx = -1; dx <= 1; ++dx) {
                        const int slot = nghSlot(dx, dy, dz);
                        if (!nodeActive[slot]) {
                            continue;
                        }
                        if (g.z + dz == 0) {
                            continue;  // fixed source node: u treated as 0
                        }
                        const double* K = table->block(mask, slot);
                        double        u[3];
                        if (dx == 0 && dy == 0 && dz == 0) {
                            for (int d = 0; d < 3; ++d) {
                                u[d] = up(cell, d);
                            }
                        } else {
                            // nodeActive proved the neighbour exists.
                            for (int d = 0; d < 3; ++d) {
                                u[d] = up.nghValUnchecked(cell, {dx, dy, dz}, d);
                            }
                        }
                        for (int r = 0; r < 3; ++r) {
                            acc[r] += K[r * 3 + 0] * u[0] + K[r * 3 + 1] * u[1] +
                                      K[r * 3 + 2] * u[2];
                        }
                    }
                }
            }
            for (int d = 0; d < 3; ++d) {
                op(cell, d) = acc[d];
            }
        };
    });
}

/// Fill the right-hand side: outward (+z) pressure integrated over the top
/// active surface, lumped per node; zero at fixed nodes.
template <typename FieldT, typename Grid>
void fillPressureRhs(const Grid& grid, const ElasticProblem& problem, FieldT b)
{
    if (grid.backend().isDryRun()) {
        return;
    }
    const double nodeForce = problem.pressure * problem.h * problem.h;
    const int32_t zTop = grid.dim().z - 1;
    b.forEachActiveHost([&](const index_3d& g, int c, double& v) {
        v = (c == 2 && g.z == zTop) ? nodeForce : 0.0;
    });
    b.updateDev();
}

/// Solve the paper's benchmark on any grid. `act` must already mark the
/// solid region; returns the CG result (x holds displacements).
template <typename Grid, typename FieldT, typename FlagFieldT>
solver::CgResult solveElastic(const Grid& grid, const ElasticProblem& problem, FlagFieldT act,
                              FieldT x, FieldT b, const solver::CgOptions& options)
{
    fillPressureRhs(grid, problem, b);
    if (!grid.backend().isDryRun()) {
        x.fillHost(0.0);
        x.updateDev();
    }
    std::function<set::Container(FieldT, FieldT)> apply = [&grid, &problem,
                                                           act](FieldT in, FieldT out) {
        return makeElasticApply(grid, problem, act, in, out);
    };
    return solver::cgSolve<Grid, FieldT, double>(grid, apply, x, b, options);
}

}  // namespace neon::fem
