#include "fem/hex8.hpp"

#include <cmath>

namespace neon::fem {

namespace {

/// Shape-function gradient of node a at (xi, eta, zeta), in reference
/// coordinates [-1, 1]^3.
std::array<double, 3> shapeGrad(int a, double xi, double eta, double zeta)
{
    const auto   corner = hex8Corner(a);
    const double sx = 2.0 * corner[0] - 1.0;
    const double sy = 2.0 * corner[1] - 1.0;
    const double sz = 2.0 * corner[2] - 1.0;
    return {
        0.125 * sx * (1.0 + sy * eta) * (1.0 + sz * zeta),
        0.125 * sy * (1.0 + sx * xi) * (1.0 + sz * zeta),
        0.125 * sz * (1.0 + sx * xi) * (1.0 + sy * eta),
    };
}

}  // namespace

ElementStiffness hex8Stiffness(const Material& material, double h)
{
    const double E = material.youngsModulus;
    const double nu = material.poissonRatio;
    const double lambda = E * nu / ((1.0 + nu) * (1.0 - 2.0 * nu));
    const double mu = E / (2.0 * (1.0 + nu));

    // Isotropic elasticity matrix in Voigt order (xx, yy, zz, xy, yz, zx).
    double D[6][6] = {};
    for (int i = 0; i < 3; ++i) {
        for (int j = 0; j < 3; ++j) {
            D[i][j] = lambda;
        }
        D[i][i] = lambda + 2.0 * mu;
        D[i + 3][i + 3] = mu;
    }

    ElementStiffness K{};
    const double     gp = 1.0 / std::sqrt(3.0);
    // Element Jacobian: x = h/2 (xi+1) => dN/dx = dN/dxi * 2/h,
    // dV = (h/2)^3 dxi deta dzeta; Gauss weights are all 1.
    const double gradScale = 2.0 / h;
    const double detJ = (h / 2.0) * (h / 2.0) * (h / 2.0);

    for (int gx = -1; gx <= 1; gx += 2) {
        for (int gy = -1; gy <= 1; gy += 2) {
            for (int gz = -1; gz <= 1; gz += 2) {
                const double xi = gx * gp;
                const double eta = gy * gp;
                const double zeta = gz * gp;

                // B matrix (6 x 24): strain = B * u_e.
                double B[6][24] = {};
                for (int a = 0; a < 8; ++a) {
                    const auto g = shapeGrad(a, xi, eta, zeta);
                    const double dx = g[0] * gradScale;
                    const double dy = g[1] * gradScale;
                    const double dz = g[2] * gradScale;
                    const int c = 3 * a;
                    B[0][c + 0] = dx;
                    B[1][c + 1] = dy;
                    B[2][c + 2] = dz;
                    B[3][c + 0] = dy;  // xy
                    B[3][c + 1] = dx;
                    B[4][c + 1] = dz;  // yz
                    B[4][c + 2] = dy;
                    B[5][c + 0] = dz;  // zx
                    B[5][c + 2] = dx;
                }

                // K += B^T D B * detJ.
                double DB[6][24];
                for (int i = 0; i < 6; ++i) {
                    for (int j = 0; j < 24; ++j) {
                        double s = 0.0;
                        for (int k = 0; k < 6; ++k) {
                            s += D[i][k] * B[k][j];
                        }
                        DB[i][j] = s;
                    }
                }
                for (int i = 0; i < 24; ++i) {
                    for (int j = 0; j < 24; ++j) {
                        double s = 0.0;
                        for (int k = 0; k < 6; ++k) {
                            s += B[k][i] * DB[k][j];
                        }
                        K[static_cast<size_t>(i)][static_cast<size_t>(j)] += s * detJ;
                    }
                }
            }
        }
    }
    return K;
}

}  // namespace neon::fem
