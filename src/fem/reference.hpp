#pragma once
// Brute-force reference for the FEM tests: assembles the global stiffness
// from elements directly (no 27-block table, no matrix-free machinery) and
// applies it densely. Slow and simple — only for small grids in tests.

#include <functional>
#include <vector>

#include "core/index3d.hpp"
#include "fem/hex8.hpp"

namespace neon::fem::reference {

class DenseAssembly
{
   public:
    /// `active(node)` defines the solid region over the node grid `dim`.
    DenseAssembly(index_3d dim, const Material& material, double h,
                  const std::function<bool(const index_3d&)>& active)
        : mDim(dim), mActive(dim.size(), false)
    {
        dim.forEach([&](const index_3d& g) { mActive[dim.pitch(g)] = active(g); });
        const auto Ke = hex8Stiffness(material, h);
        const size_t n = dim.size() * 3;
        mK.assign(n * n, 0.0);

        // Elements: origin o with all 8 corner nodes active.
        index_3d elems{dim.x - 1, dim.y - 1, dim.z - 1};
        elems.forEach([&](const index_3d& o) {
            for (int a = 0; a < 8; ++a) {
                const auto ka = hex8Corner(a);
                if (!isActive({o.x + ka[0], o.y + ka[1], o.z + ka[2]})) {
                    return;
                }
            }
            for (int a = 0; a < 8; ++a) {
                const auto ka = hex8Corner(a);
                const size_t ga = mDim.pitch({o.x + ka[0], o.y + ka[1], o.z + ka[2]});
                for (int b = 0; b < 8; ++b) {
                    const auto kb = hex8Corner(b);
                    const size_t gb = mDim.pitch({o.x + kb[0], o.y + kb[1], o.z + kb[2]});
                    for (int r = 0; r < 3; ++r) {
                        for (int s = 0; s < 3; ++s) {
                            mK[(ga * 3 + static_cast<size_t>(r)) * n +
                               (gb * 3 + static_cast<size_t>(s))] +=
                                Ke[static_cast<size_t>(3 * a + r)][static_cast<size_t>(3 * b + s)];
                        }
                    }
                }
            }
        });
    }

    [[nodiscard]] bool isActive(const index_3d& g) const
    {
        return mDim.contains(g) && mActive[mDim.pitch(g)];
    }

    /// out = (P K P + (I-P)) u with P zeroing fixed (z == 0) and inactive
    /// rows/columns — the same constrained operator as the Neon kernel.
    void apply(const std::vector<double>& u, std::vector<double>& out) const
    {
        const size_t n = mDim.size() * 3;
        out.assign(n, 0.0);
        mDim.forEach([&](const index_3d& gi) {
            const size_t i = mDim.pitch(gi);
            const bool   constrainedRow = !mActive[i] || gi.z == 0;
            for (int r = 0; r < 3; ++r) {
                const size_t row = i * 3 + static_cast<size_t>(r);
                if (constrainedRow) {
                    out[row] = u[row];
                    continue;
                }
                double acc = 0.0;
                mDim.forEach([&](const index_3d& gj) {
                    const size_t j = mDim.pitch(gj);
                    if (!mActive[j] || gj.z == 0) {
                        return;  // constrained column: u treated as 0
                    }
                    for (int s = 0; s < 3; ++s) {
                        acc += mK[row * n + (j * 3 + static_cast<size_t>(s))] *
                               u[j * 3 + static_cast<size_t>(s)];
                    }
                });
                out[row] = acc;
            }
        });
    }

    [[nodiscard]] const std::vector<double>& matrix() const { return mK; }
    [[nodiscard]] const index_3d&            dim() const { return mDim; }

   private:
    index_3d            mDim;
    std::vector<bool>   mActive;
    std::vector<double> mK;
};

}  // namespace neon::fem::reference
