#pragma once
// 8-node hexahedral element stiffness for isotropic linear elasticity,
// integrated with 2x2x2 Gauss quadrature on a cube element of side h
// (the substrate of the paper's finite-element linear-elastic solver,
// §VI-C).

#include <array>

namespace neon::fem {

/// Material parameters (isotropic).
struct Material
{
    double youngsModulus = 1.0;
    double poissonRatio = 0.3;
};

/// 24x24 element stiffness; local node a = i + 2j + 4k for corner (i,j,k).
using ElementStiffness = std::array<std::array<double, 24>, 24>;

/// Compute the trilinear hex element stiffness for element size h.
ElementStiffness hex8Stiffness(const Material& material, double h);

/// Local corner coordinates of node a (each component 0 or 1).
constexpr std::array<int, 3> hex8Corner(int a)
{
    return {a & 1, (a >> 1) & 1, (a >> 2) & 1};
}

}  // namespace neon::fem
