#include <cstring>

#include "fem/elasticity.hpp"

namespace neon::fem {

NodeStencilTable::NodeStencilTable(const Material& material, double h)
{
    const ElementStiffness Ke = hex8Stiffness(material, h);
    mBlocks.assign(256 * 27 * 9, 0.0);

    // Contribution of incident element c (origin = node + cornerOrigin(c))
    // to the coupling between the node and its neighbour at offset d:
    //   Ke[local(node)][local(node + d)] where local(p) = p - origin.
    for (int mask = 0; mask < 256; ++mask) {
        for (int c = 0; c < 8; ++c) {
            if ((mask & (1 << c)) == 0) {
                continue;
            }
            const auto origin = cornerOrigin(c);
            // The node's local corner within element c is -origin.
            const int la = (-origin[0]) + 2 * (-origin[1]) + 4 * (-origin[2]);
            for (int b = 0; b < 8; ++b) {
                const auto kb = hex8Corner(b);
                const int  dx = origin[0] + kb[0];
                const int  dy = origin[1] + kb[1];
                const int  dz = origin[2] + kb[2];
                const int  slot = nghSlot(dx, dy, dz);
                double*    blk =
                    mBlocks.data() +
                    ((static_cast<size_t>(mask) * 27 + static_cast<size_t>(slot)) * 9);
                for (int r = 0; r < 3; ++r) {
                    for (int s = 0; s < 3; ++s) {
                        blk[r * 3 + s] += Ke[static_cast<size_t>(3 * la + r)]
                                            [static_cast<size_t>(3 * b + s)];
                    }
                }
            }
        }
    }
}

}  // namespace neon::fem
