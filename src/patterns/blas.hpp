#pragma once
// Grid-generic BLAS-like containers with a unified interface for every grid
// type (paper §III: "Neon also offers a set of well-optimized standard BLAS
// operations (e.g., dot product) with a unified interface for different
// grid types to facilitate rapid prototyping").
//
// All functions return Containers to be composed in a Skeleton sequence.
// Scalars are GlobalScalar handles so a skeleton built once can run many
// iterations with per-iteration values (CG's alpha/beta).

#include <string>

#include "set/container.hpp"
#include "set/loader.hpp"
#include "set/scalar.hpp"

namespace neon::patterns {

/// f[i] = value for all components.
template <typename Grid, typename Field, typename T>
set::Container setValue(const Grid& grid, Field f, T value, std::string name = "set")
{
    const int card = f.cardinality();
    return grid.newContainer(std::move(name), [f, value, card](auto& l) mutable {
        auto fp = l.load(f, Access::WRITE);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                fp(cell, c) = value;
            }
        };
    });
}

/// dst[i] = src[i].
template <typename Grid, typename Field>
set::Container copy(const Grid& grid, Field src, Field dst, std::string name = "copy")
{
    const int card = src.cardinality();
    return grid.newContainer(std::move(name), [src, dst, card](auto& l) mutable {
        auto s = l.load(src, Access::READ);
        auto d = l.load(dst, Access::WRITE);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                d(cell, c) = s(cell, c);
            }
        };
    });
}

/// y[i] += alpha * x[i]   (alpha is a device-resident global scalar).
template <typename Grid, typename Field, typename T>
set::Container axpy(const Grid& grid, set::GlobalScalar<T> alpha, Field x, Field y,
                    std::string name = "axpy")
{
    const int card = x.cardinality();
    return grid.newContainer(std::move(name), [alpha, x, y, card](auto& l) mutable {
        auto a = l.load(alpha, Access::READ);
        auto xp = l.load(x, Access::READ);
        auto yp = l.load(y, Access::WRITE);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                yp(cell, c) += a() * xp(cell, c);
            }
        };
    });
}

/// y[i] -= alpha * x[i].
template <typename Grid, typename Field, typename T>
set::Container axmy(const Grid& grid, set::GlobalScalar<T> alpha, Field x, Field y,
                    std::string name = "axmy")
{
    const int card = x.cardinality();
    return grid.newContainer(std::move(name), [alpha, x, y, card](auto& l) mutable {
        auto a = l.load(alpha, Access::READ);
        auto xp = l.load(x, Access::READ);
        auto yp = l.load(y, Access::WRITE);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                yp(cell, c) -= a() * xp(cell, c);
            }
        };
    });
}

/// y[i] = x[i] + beta * y[i]  — the "UpdateP" step of CG (Listing 3).
template <typename Grid, typename Field, typename T>
set::Container xpby(const Grid& grid, Field x, set::GlobalScalar<T> beta, Field y,
                    std::string name = "xpby")
{
    const int card = x.cardinality();
    return grid.newContainer(std::move(name), [x, beta, y, card](auto& l) mutable {
        auto b = l.load(beta, Access::READ);
        auto xp = l.load(x, Access::READ);
        auto yp = l.load(y, Access::WRITE);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                yp(cell, c) = xp(cell, c) + b() * yp(cell, c);
            }
        };
    });
}

/// result = sum_i sum_c x[i,c] * y[i,c].
template <typename Grid, typename Field, typename T>
set::Container dot(const Grid& grid, Field x, Field y, set::GlobalScalar<T> result,
                   std::string name = "dot")
{
    const int card = x.cardinality();
    return set::Container::reduceFactory(
        std::move(name), grid, result, [x, y, card](auto& l) mutable {
            auto xp = l.load(x, Access::READ, Compute::REDUCE);
            auto yp = l.load(y, Access::READ, Compute::REDUCE);
            return [=](const auto& cell, T& acc) {
                for (int c = 0; c < card; ++c) {
                    acc += xp(cell, c) * yp(cell, c);
                }
            };
        });
}

/// result = sum_i sum_c x[i,c]^2  (squared L2 norm).
template <typename Grid, typename Field, typename T>
set::Container norm2Sq(const Grid& grid, Field x, set::GlobalScalar<T> result,
                       std::string name = "norm2sq")
{
    return dot(grid, x, x, result, std::move(name));
}

/// result = max_i max_c |x[i,c]|  (infinity norm). `result` must be a
/// Max-reduction scalar (GlobalScalar ctor with ReduceOp::Max).
template <typename Grid, typename Field, typename T>
set::Container normInf(const Grid& grid, Field x, set::GlobalScalar<T> result,
                       std::string name = "normInf")
{
    NEON_CHECK(result.reduceOp() == set::ReduceOp::Max,
               "normInf requires a Max-reduction scalar");
    const int card = x.cardinality();
    return set::Container::reduceFactory(
        std::move(name), grid, result, [x, result, card](auto& l) mutable {
            auto xp = l.load(x, Access::READ, Compute::REDUCE);
            return [=](const auto& cell, T& acc) {
                for (int c = 0; c < card; ++c) {
                    const T v = xp(cell, c) < T{} ? -xp(cell, c) : xp(cell, c);
                    result.fold(acc, v);
                }
            };
        });
}

}  // namespace neon::patterns
