#pragma once
// Field export to legacy VTK (the counterpart of Neon's ioToVtk): writes
// the field as STRUCTURED_POINTS over the grid's bounding box with one
// scalar array per component. Inactive cells of sparse grids carry the
// field's outsideValue, so the file is viewable in ParaView for both grid
// types without a connectivity dump.

#include <fstream>
#include <string>

#include "core/error.hpp"
#include "core/index3d.hpp"

namespace neon::patterns {

/// Write `field` (host mirror; call field.updateHost() first) to `path`.
template <typename FieldT>
void ioToVtk(const FieldT& field, const std::string& path,
             const std::string& fieldName = "field", double spacing = 1.0)
{
    const auto&  grid = field.grid();
    const auto   dim = grid.dim();
    std::ofstream os(path);
    NEON_CHECK(os.good(), "cannot open VTK output file: " + path);

    os << "# vtk DataFile Version 3.0\n";
    os << "neon field export: " << fieldName << "\n";
    os << "ASCII\n";
    os << "DATASET STRUCTURED_POINTS\n";
    os << "DIMENSIONS " << dim.x << " " << dim.y << " " << dim.z << "\n";
    os << "ORIGIN 0 0 0\n";
    os << "SPACING " << spacing << " " << spacing << " " << spacing << "\n";
    os << "POINT_DATA " << dim.size() << "\n";

    for (int c = 0; c < field.cardinality(); ++c) {
        os << "SCALARS " << fieldName;
        if (field.cardinality() > 1) {
            os << "_" << c;
        }
        os << " double 1\n";
        os << "LOOKUP_TABLE default\n";
        dim.forEach([&](const index_3d& g) {
            const double v = grid.isActive(g) ? static_cast<double>(field.hVal(g, c))
                                              : static_cast<double>(field.outsideValue());
            os << v << "\n";
        });
    }
    NEON_CHECK(os.good(), "error while writing VTK output: " + path);
}

}  // namespace neon::patterns
