#pragma once
// Damped Jacobi iteration — a second matrix-free solver/smoother on top of
// the Skeleton, demonstrating that the CG machinery (apply factories,
// global scalars, OCC) generalizes. For the 7-point Laplacian the Jacobi
// update reads
//     x_{k+1} = x_k + omega * Dinv * (b - A x_k)
// with Dinv supplied by the operator (constant for uniform stencils).

#include <cmath>
#include <functional>

#include "patterns/blas.hpp"
#include "set/scalar.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::solver {

struct JacobiOptions
{
    int    maxIterations = 200;
    double tolerance = 1e-8;  ///< on ||r||_inf / ||b||_inf
    double omega = 2.0 / 3.0;
    double diagInverse = 1.0 / 6.0;  ///< 1/diag(A); 1/6 for the 7-pt Laplacian
    Occ    occ = Occ::NONE;
    int    checkEvery = 5;
    bool   fixedIterations = false;
};

struct JacobiResult
{
    int    iterations = 0;
    double relativeResidual = 0.0;
    bool   converged = false;
};

/// Solve A x = b with damped Jacobi. `makeApply(in, out)` produces the
/// container computing out = A*in.
template <typename Grid, typename FieldT, typename T>
JacobiResult jacobiSolve(const Grid&                                          grid,
                         const std::function<set::Container(FieldT, FieldT)>& makeApply,
                         FieldT x, FieldT b, const JacobiOptions& options = {})
{
    using set::Container;
    using set::GlobalScalar;

    auto backend = grid.backend();
    const int card = x.cardinality();

    FieldT Ax = grid.template newField<T>("jacobi.Ax", card, T{});
    GlobalScalar<T> rInf(backend, "jacobi.rInf", T{}, set::ReduceOp::Max);
    GlobalScalar<T> bInf(backend, "jacobi.bInf", T{}, set::ReduceOp::Max);

    // One iteration: Ax = A x; x += omega*Dinv*(b - Ax); rInf = |b - Ax|_inf
    auto applyX = makeApply(x, Ax);
    const T    scale = static_cast<T>(options.omega * options.diagInverse);
    auto update = grid.newContainer("jacobi.update", [x, b, Ax, scale, card](auto& l) mutable {
        auto xp = l.load(x, Access::WRITE);
        auto bp = l.load(b, Access::READ);
        auto ap = l.load(Ax, Access::READ);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                xp(cell, c) += scale * (bp(cell, c) - ap(cell, c));
            }
        };
    });
    auto residual = Container::reduceFactory(
        "jacobi.rInf", grid, rInf, [b, Ax, rInf, card](auto& l) mutable {
            auto bp = l.load(b, Access::READ, Compute::REDUCE);
            auto ap = l.load(Ax, Access::READ, Compute::REDUCE);
            return [=](const auto& cell, T& acc) {
                for (int c = 0; c < card; ++c) {
                    const T r = bp(cell, c) - ap(cell, c);
                    rInf.fold(acc, r < T{} ? -r : r);
                }
            };
        });

    skeleton::Skeleton init(backend);
    init.sequence({patterns::normInf(grid, b, bInf, "jacobi.bInf")},
                  skeleton::SequenceOptions().withName("jacobi.init").withOcc(options.occ));
    init.run();
    init.sync();
    const double bScale =
        bInf.hostValue() > T{} ? static_cast<double>(bInf.hostValue()) : 1.0;

    // Note the order: the residual reduce reads Ax *before* update consumes
    // it, and update writes x which the next run's applyX reads.
    skeleton::Skeleton iter(backend);
    iter.sequence({applyX, residual, update},
                  skeleton::SequenceOptions().withName("jacobi.iter").withOcc(options.occ));

    JacobiResult result;
    for (int it = 1; it <= options.maxIterations; ++it) {
        iter.run();
        result.iterations = it;
        if (options.fixedIterations) {
            continue;
        }
        if (it % options.checkEvery == 0 || it == options.maxIterations) {
            iter.sync();
            result.relativeResidual = static_cast<double>(rInf.hostValue()) / bScale;
            if (result.relativeResidual <= options.tolerance) {
                result.converged = true;
                break;
            }
        }
    }
    iter.sync();
    return result;
}

}  // namespace neon::solver
