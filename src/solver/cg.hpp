#pragma once
// Matrix-free conjugate-gradient solver (paper Listing 3, §VI-B/§VI-C).
//
// The operator A is supplied as a factory producing a stencil Container
// `out = A * in`, so the same solver drives the finite-difference Poisson
// operator (7-point) and the finite-element elasticity operator (27-point),
// on dense or sparse grids.
//
// Following the paper (§VI-B), the UpdateP map runs at the *start* of each
// iteration, right before the stencil, which enables the two-way extended
// OCC to overlap the halo update with internal map/stencil/reduce work.

#include <cmath>
#include <functional>
#include <string>

#include "patterns/blas.hpp"
#include "set/scalar.hpp"
#include "skeleton/skeleton.hpp"

namespace neon::solver {

struct CgOptions
{
    int    maxIterations = 1000;
    double tolerance = 1e-9;  ///< on ||r|| / ||b||
    Occ    occ = Occ::NONE;
    /// Read the residual (host sync) every N iterations.
    int checkEvery = 1;
    /// Run exactly maxIterations with no convergence checks. Required for
    /// dry-run benchmarking (no data is computed, so residuals are
    /// meaningless) and useful for fixed-work performance measurements.
    bool fixedIterations = false;
};

struct CgResult
{
    int    iterations = 0;
    double relativeResidual = 0.0;
    bool   converged = false;
};

/// Solve A x = b. `makeApply(in, out)` returns the Container computing
/// out = A*in; x holds the initial guess on entry and the solution on exit
/// (device side; call x.updateHost() to read it).
template <typename Grid, typename FieldT, typename T>
CgResult cgSolve(const Grid&                                          grid,
                 const std::function<set::Container(FieldT, FieldT)>& makeApply, FieldT x,
                 FieldT b, const CgOptions& options = {})
{
    using set::Container;
    using set::GlobalScalar;

    auto backend = grid.backend();
    const int card = x.cardinality();

    FieldT r = grid.template newField<T>("cg.r", card, T{});
    FieldT p = grid.template newField<T>("cg.p", card, T{});
    FieldT Ap = grid.template newField<T>("cg.Ap", card, T{});

    GlobalScalar<T> rsold(backend, "cg.rsold", T{});
    GlobalScalar<T> rsnew(backend, "cg.rsnew", T{});
    GlobalScalar<T> pAp(backend, "cg.pAp", T{});
    GlobalScalar<T> alpha(backend, "cg.alpha", T{});
    GlobalScalar<T> beta(backend, "cg.beta", T{});
    GlobalScalar<T> bNorm(backend, "cg.bNorm", T{});

    // --- init: r = b - A x ; rsold = r.r ; bNorm = b.b -------------------
    auto applyX = makeApply(x, Ap);
    auto initR = grid.newContainer("cg.initR", [b, Ap, r, card](auto& l) mutable {
        auto bp = l.load(b, Access::READ);
        auto ap = l.load(Ap, Access::READ);
        auto rp = l.load(r, Access::WRITE);
        return [=](const auto& cell) mutable {
            for (int c = 0; c < card; ++c) {
                rp(cell, c) = bp(cell, c) - ap(cell, c);
            }
        };
    });
    auto rsInit = patterns::norm2Sq(grid, r, rsold, "cg.rs0");
    auto bbInit = patterns::norm2Sq(grid, b, bNorm, "cg.bb");

    skeleton::Skeleton init(backend);
    init.sequence({applyX, initR, rsInit, bbInit},
                  skeleton::SequenceOptions().withName("cg.init").withOcc(options.occ));
    init.run();
    init.sync();
    beta.set(T{});

    const double bb = static_cast<double>(bNorm.hostValue());
    const double bScale = bb > 0 ? std::sqrt(bb) : 1.0;

    CgResult result;
    if (!options.fixedIterations) {
        result.relativeResidual = std::sqrt(static_cast<double>(rsold.hostValue())) / bScale;
        if (result.relativeResidual <= options.tolerance) {
            result.converged = true;
            return result;
        }
    }

    // --- one CG iteration as a skeleton sequence (Listing 3) -------------
    auto updateP = patterns::xpby(grid, r, beta, p, "cg.updateP");
    auto applyP = makeApply(p, Ap);
    auto dotPAp = patterns::dot(grid, p, Ap, pAp, "cg.pAp");
    auto alphaOp = Container::scalarOp<T>(
        "cg.alpha", backend, {rsold, pAp}, {alpha}, [rsold, pAp, alpha]() mutable {
            alpha.set(rsold.hostValue() / pAp.hostValue());
        });
    auto xUpdate = patterns::axpy(grid, alpha, p, x, "cg.x+=ap");
    auto rUpdate = patterns::axmy(grid, alpha, Ap, r, "cg.r-=aAp");
    auto dotRR = patterns::norm2Sq(grid, r, rsnew, "cg.rsnew");
    auto betaOp = Container::scalarOp<T>(
        "cg.beta", backend, {rsnew, rsold}, {beta, rsold}, [rsnew, rsold, beta]() mutable {
            beta.set(rsnew.hostValue() / rsold.hostValue());
            rsold.set(rsnew.hostValue());
        });

    skeleton::Skeleton iter(backend);
    iter.sequence({updateP, applyP, dotPAp, alphaOp, xUpdate, rUpdate, dotRR, betaOp},
                  skeleton::SequenceOptions().withName("cg.iter").withOcc(options.occ));

    for (int it = 1; it <= options.maxIterations; ++it) {
        iter.run();
        result.iterations = it;
        if (options.fixedIterations) {
            continue;
        }
        if (it % options.checkEvery == 0 || it == options.maxIterations) {
            iter.sync();
            result.relativeResidual =
                std::sqrt(static_cast<double>(rsnew.hostValue())) / bScale;
            if (result.relativeResidual <= options.tolerance) {
                result.converged = true;
                break;
            }
        }
    }
    iter.sync();
    return result;
}

}  // namespace neon::solver
