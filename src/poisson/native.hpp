#pragma once
// Hand-written flat-array Poisson CG: the stand-in for the paper's
// "CUDA + cuBLAS" baseline (§VI-B). No framework machinery: raw buffers,
// fused index arithmetic, no per-access bounds bookkeeping beyond the
// minimum. Used for correctness cross-checks and for the wall-clock
// baseline rows in the Fig. 8 bench.

#include <cmath>
#include <vector>

#include "core/index3d.hpp"
#include "poisson/poisson.hpp"

namespace neon::poisson::native {

struct Result
{
    int    iterations = 0;
    double relativeResidual = 0.0;
    bool   converged = false;
};

class NativeCg
{
   public:
    explicit NativeCg(index_3d dim)
        : mDim(dim),
          mX(dim.size(), 0.0),
          mB(dim.size(), 0.0),
          mR(dim.size(), 0.0),
          mP(dim.size(), 0.0),
          mAp(dim.size(), 0.0)
    {
    }

    [[nodiscard]] std::vector<double>&       rhs() { return mB; }
    [[nodiscard]] const std::vector<double>& solution() const { return mX; }

    void setupSineProblem()
    {
        const SineProblem problem(mDim);
        mDim.forEach([&](const index_3d& g) { mB[mDim.pitch(g)] = problem.rhs(g); });
    }

    /// out = A*in, 7-point negated Laplacian, Dirichlet-0 outside.
    void apply(const std::vector<double>& in, std::vector<double>& out) const
    {
        const int32_t nx = mDim.x;
        const int32_t ny = mDim.y;
        const int32_t nz = mDim.z;
        const size_t  sx = 1;
        const size_t  sy = static_cast<size_t>(nx);
        const size_t  sz = static_cast<size_t>(nx) * static_cast<size_t>(ny);
        for (int32_t z = 0; z < nz; ++z) {
            for (int32_t y = 0; y < ny; ++y) {
                for (int32_t x = 0; x < nx; ++x) {
                    const size_t i = static_cast<size_t>(x) + sy * static_cast<size_t>(y) +
                                     sz * static_cast<size_t>(z);
                    double acc = 6.0 * in[i];
                    if (x + 1 < nx) acc -= in[i + sx];
                    if (x > 0) acc -= in[i - sx];
                    if (y + 1 < ny) acc -= in[i + sy];
                    if (y > 0) acc -= in[i - sy];
                    if (z + 1 < nz) acc -= in[i + sz];
                    if (z > 0) acc -= in[i - sz];
                    out[i] = acc;
                }
            }
        }
    }

    [[nodiscard]] static double dot(const std::vector<double>& a, const std::vector<double>& b)
    {
        double s = 0.0;
        for (size_t i = 0; i < a.size(); ++i) {
            s += a[i] * b[i];
        }
        return s;
    }

    Result solve(int maxIterations, double tolerance)
    {
        const size_t n = mDim.size();
        apply(mX, mAp);
        for (size_t i = 0; i < n; ++i) {
            mR[i] = mB[i] - mAp[i];
            mP[i] = mR[i];
        }
        double       rsold = dot(mR, mR);
        const double bb = dot(mB, mB);
        const double bScale = bb > 0 ? std::sqrt(bb) : 1.0;

        Result result;
        result.relativeResidual = std::sqrt(rsold) / bScale;
        if (result.relativeResidual <= tolerance) {
            result.converged = true;
            return result;
        }
        for (int it = 1; it <= maxIterations; ++it) {
            apply(mP, mAp);
            const double alpha = rsold / dot(mP, mAp);
            for (size_t i = 0; i < n; ++i) {
                mX[i] += alpha * mP[i];
            }
            for (size_t i = 0; i < n; ++i) {
                mR[i] -= alpha * mAp[i];
            }
            const double rsnew = dot(mR, mR);
            result.iterations = it;
            result.relativeResidual = std::sqrt(rsnew) / bScale;
            if (result.relativeResidual <= tolerance) {
                result.converged = true;
                break;
            }
            const double beta = rsnew / rsold;
            for (size_t i = 0; i < n; ++i) {
                mP[i] = mR[i] + beta * mP[i];
            }
            rsold = rsnew;
        }
        return result;
    }

   private:
    index_3d            mDim;
    std::vector<double> mX, mB, mR, mP, mAp;
};

}  // namespace neon::poisson::native
