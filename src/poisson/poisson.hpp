#pragma once
// Finite-difference Poisson solver (paper §VI-B): standard 7-point stencil
// discretization of -∇²u = f on the unit cube with homogeneous Dirichlet
// boundary conditions, solved with the matrix-free CG of solver/cg.hpp.
//
// Grid nodes sit at x_i = (i+1)h, h = 1/(N+1); the zero boundary lives on
// the layer outside the grid and is served by the fields' outsideValue.

#include <cmath>
#include <numbers>

#include "core/index3d.hpp"
#include "solver/cg.hpp"

namespace neon::poisson {

/// Container factory: out = A*in with A the (negated, SPD) 7-point
/// Laplacian: A u|_i = 6 u_i - sum_{n in N6(i)} u_n.
template <typename Grid, typename FieldT>
set::Container makeLaplacianApply(const Grid& grid, FieldT in, FieldT out,
                                  std::string name = "laplacian")
{
    return grid.newContainer(std::move(name), [in, out](auto& l) mutable {
        auto ip = l.load(in, Access::READ, Compute::STENCIL);
        auto op = l.load(out, Access::WRITE);
        return [=](const auto& cell) mutable {
            double acc = 6.0 * ip(cell);
            acc -= ip.nghVal(cell, {1, 0, 0});
            acc -= ip.nghVal(cell, {-1, 0, 0});
            acc -= ip.nghVal(cell, {0, 1, 0});
            acc -= ip.nghVal(cell, {0, -1, 0});
            acc -= ip.nghVal(cell, {0, 0, 1});
            acc -= ip.nghVal(cell, {0, 0, -1});
            op(cell) = acc;
        };
    });
}

/// Analytic test problem: u(x,y,z) = sin(pi x) sin(pi y) sin(pi z), so
/// f = 3 pi^2 u. The discrete right-hand side is b = h^2 f.
struct SineProblem
{
    index_3d dim;
    double   h;

    explicit SineProblem(index_3d d) : dim(d), h(1.0 / (d.x + 1)) {}

    [[nodiscard]] double exactU(const index_3d& g) const
    {
        using std::numbers::pi;
        return std::sin(pi * (g.x + 1) * h) * std::sin(pi * (g.y + 1) * h) *
               std::sin(pi * (g.z + 1) * h);
    }

    [[nodiscard]] double rhs(const index_3d& g) const
    {
        using std::numbers::pi;
        return 3.0 * pi * pi * exactU(g) * h * h;
    }
};

/// Set up and solve the sine problem on any grid; returns the CG result.
/// On exit `x` holds the device-side solution.
template <typename Grid, typename FieldT>
solver::CgResult solveSine(const Grid& grid, FieldT x, FieldT b,
                           const solver::CgOptions& options)
{
    const SineProblem problem(grid.dim());
    if (!grid.backend().isDryRun()) {
        b.forEachActiveHost([&](const index_3d& g, int, double& v) { v = problem.rhs(g); });
        b.updateDev();
        x.fillHost(0.0);
        x.updateDev();
    }

    std::function<set::Container(FieldT, FieldT)> apply = [&grid](FieldT in, FieldT out) {
        return makeLaplacianApply(grid, in, out);
    };
    return solver::cgSolve<Grid, FieldT, double>(grid, apply, x, b, options);
}

}  // namespace neon::poisson
